//! Declarative scenario documents: define, load and evaluate arbitrary
//! networks without recompiling.
//!
//! A [`ScenarioDoc`] is the data-file counterpart of a hand-built
//! [`NetworkSpec`]: vulnerabilities (as CVSS v2 vector strings or explicit
//! impact/probability pairs), named attack trees, tiers with their
//! Table-IV-style rate parameters, tier-level topology edges, named
//! redundancy designs, patch policies and the security-metric
//! configuration. Documents serialize to a canonical JSON form
//! ([`ScenarioDoc::to_json`], schema [`SCHEMA`]) and load back through the
//! dependency-free parser in [`output`](crate::output)
//! ([`ScenarioDoc::from_json`]); `parse ∘ serialize` is the identity on
//! every valid document, at full `f64` precision.
//!
//! Loaded documents are **validated, never trusted**: every structural
//! defect (unknown vulnerability id, dangling tree reference, zero-server
//! tier, missing entry/target, out-of-range CVSS values, …) surfaces as a
//! typed [`ScenarioError`] inside [`EvalError::Scenario`], with a
//! `where`-path telling the author which field to fix. Nothing on the
//! scenario path panics on user data.
//!
//! The paper's Figure-2 case study is itself expressed as the reference
//! built-in document ([`builtin::paper_case_study`]) — the hand-built
//! [`case_study::network`](crate::case_study::network) is derived from it,
//! so the entire golden corpus continuously proves that the scenario path
//! reproduces the paper bit-for-bit. Further built-ins
//! ([`builtin::BUILTINS`]) open non-paper workloads: a six-tier e-commerce
//! stack, an IoT sensor fleet with multiple entry and target tiers, and a
//! seven-tier microservice mesh.
//!
//! # Examples
//!
//! Round-trip the paper network through JSON and evaluate it:
//!
//! ```
//! use redeval::scenario::{builtin, ScenarioDoc};
//! use redeval::Evaluator;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let json = builtin::paper_case_study().to_json();
//! let doc = ScenarioDoc::from_json(&json)?;
//! let evaluator = Evaluator::from_scenario(&doc)?;
//! let base = evaluator.evaluate("base", &[1, 2, 2, 1])?;
//! assert!((base.coa - 0.99707).abs() < 5e-5);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use redeval_avail::{Durations, ServerParams};
use redeval_cvss::v2::BaseVector;
use redeval_cvss::ParseVectorError;
use redeval_harm::{AspStrategy, AttackTree, MetricsConfig, OrCombine, Vulnerability};

use crate::output::{fmt_f64, json_escape, parse_json, snippet, Json};
use crate::spec::{Design, NetworkSpec, TierSpec};
use crate::{EvalError, PatchPolicy};

pub mod builtin;
pub mod generate;

/// Identifies the scenario-file schema (bumped on breaking changes).
pub const SCHEMA: &str = "redeval-scenario/1";

/// An error in a scenario document: JSON syntax or schema/consistency
/// violations, each pointing at the offending location.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The document is not well-formed JSON.
    Json {
        /// 1-based line of the syntax error.
        line: usize,
        /// 1-based column of the syntax error.
        col: usize,
        /// Parser message.
        message: String,
    },
    /// The document is well-formed JSON but violates the scenario schema
    /// or its consistency rules.
    Invalid {
        /// Dotted path of the offending field, e.g. `tiers[2].count`.
        at: String,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json { line, col, message } => {
                write!(
                    f,
                    "JSON syntax error at line {line}, column {col}: {message}"
                )
            }
            ScenarioError::Invalid { at, message } => write!(f, "{at}: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Shorthand constructor for schema violations.
fn invalid(at: impl Into<String>, message: impl Into<String>) -> EvalError {
    EvalError::Scenario(ScenarioError::Invalid {
        at: at.into(),
        message: message.into(),
    })
}

/// Where a vulnerability's impact/probability numbers come from.
#[derive(Debug, Clone, PartialEq)]
pub enum VulnSource {
    /// A CVSS v2 base vector string (`"AV:N/AC:L/Au:N/C:C/I:C/A:C"`);
    /// impact, probability and base score are derived exactly as the
    /// paper does (Table I).
    Vector(String),
    /// Explicit paper-style values.
    Explicit {
        /// Attack impact (CVSS v2 impact subscore, `0.0..=10.0`).
        impact: f64,
        /// Attack success probability (`0.0..=1.0`).
        probability: f64,
        /// Optional explicit CVSS base score (`0.0..=10.0`); derived from
        /// impact and probability when absent.
        base_score: Option<f64>,
    },
}

/// One vulnerability record of a scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnDef {
    /// Document-local id referenced by trees (`"v1web"`).
    pub id: String,
    /// Optional CVE identifier (provenance; shown in DOT exports).
    pub cve: Option<String>,
    /// The numbers, by vector or explicitly.
    pub source: VulnSource,
}

/// A node of a named attack tree: a vulnerability reference or an AND/OR
/// gate over child nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeDef {
    /// A leaf referencing a [`VulnDef`] by id.
    Vuln(String),
    /// All children must be exploited.
    And(Vec<TreeDef>),
    /// Any child suffices.
    Or(Vec<TreeDef>),
}

/// One tier of a scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct TierDef {
    /// Tier name (unique; also used in edges and design names).
    pub name: String,
    /// Baseline number of redundant servers.
    pub count: u32,
    /// Failure/recovery/patch rates (Table IV form). The params' service
    /// name is the tier name.
    pub params: ServerParams,
    /// Name of the tier's attack tree, `None` when its servers carry no
    /// exploitable vulnerabilities.
    pub tree: Option<String>,
    /// Whether the external attacker reaches this tier directly.
    pub entry: bool,
    /// Whether compromising a server of this tier achieves the goal.
    pub target: bool,
}

/// A complete declarative scenario: everything needed to build a
/// [`NetworkSpec`] plus the evaluation axes (designs, policies, metric
/// configuration). See the [module docs](self) for the JSON form.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    /// Machine name (`[a-zA-Z0-9_-]+`; file stems and CLI keys).
    pub name: String,
    /// Human title.
    pub title: String,
    /// Free-text description (may be empty).
    pub description: String,
    /// The vulnerability catalogue.
    pub vulnerabilities: Vec<VulnDef>,
    /// Named attack trees over the catalogue, in document order.
    pub trees: Vec<(String, TreeDef)>,
    /// The tiers, in document order.
    pub tiers: Vec<TierDef>,
    /// Tier-level reachability by tier name.
    pub edges: Vec<(String, String)>,
    /// Redundancy designs to evaluate (per-tier counts).
    pub designs: Vec<Design>,
    /// Patch policies to evaluate, in order; the first one is the
    /// document's primary policy.
    pub policies: Vec<PatchPolicy>,
    /// Security-metric configuration.
    pub metrics: MetricsConfig,
}

impl ScenarioDoc {
    /// A minimal document with the given name/title, the default metrics
    /// and the paper's default policy; fill in the rest field by field.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        ScenarioDoc {
            name: name.into(),
            title: title.into(),
            description: String::new(),
            vulnerabilities: Vec::new(),
            trees: Vec::new(),
            tiers: Vec::new(),
            edges: Vec::new(),
            designs: Vec::new(),
            policies: vec![PatchPolicy::CriticalOnly(8.0)],
            metrics: MetricsConfig::default(),
        }
    }

    /// The design named after the tiers' baseline counts (used when a
    /// document lists no designs of its own).
    pub fn base_design(&self) -> Design {
        let names: Vec<&str> = self.tiers.iter().map(|t| t.name.as_str()).collect();
        let counts: Vec<u32> = self.tiers.iter().map(|t| t.count).collect();
        Design::new(Design::conventional_name(&names, &counts), counts)
    }

    /// The document's primary patch policy: the first of
    /// [`policies`](Self::policies), or the paper default when the list is
    /// empty.
    pub fn first_policy(&self) -> PatchPolicy {
        self.policies
            .first()
            .copied()
            .unwrap_or(PatchPolicy::CriticalOnly(8.0))
    }

    /// Validates the document without building anything callers keep.
    ///
    /// # Errors
    ///
    /// The same errors [`to_spec`](Self::to_spec) reports.
    pub fn validate(&self) -> Result<(), EvalError> {
        self.to_spec().map(|_| ())
    }

    /// Resolves and validates the document into a [`NetworkSpec`].
    ///
    /// Resolution rules:
    ///
    /// * vulnerability leaves resolve through the catalogue; a record with
    ///   a CVE serves its vulnerability under the display id
    ///   `"<id> (<cve>)"`, keeping provenance visible in DOT exports;
    /// * vector-sourced records derive impact/probability/base score from
    ///   the CVSS v2 equations (identical, to the bit, with Table I's
    ///   values for the paper records);
    /// * edges resolve tier names to indices; designs are checked against
    ///   the tier count.
    ///
    /// # Errors
    ///
    /// [`EvalError::Scenario`] for catalogue/tree/tier/design defects,
    /// [`EvalError::InvalidSpec`] for structural network defects.
    pub fn to_spec(&self) -> Result<NetworkSpec, EvalError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(invalid(
                "name",
                format!(
                    "`{}` is not a valid scenario name (use [a-zA-Z0-9_-]+)",
                    snippet(&self.name)
                ),
            ));
        }
        // An empty network is the most fundamental defect; report it
        // before the derived checks (designs, policies) can obscure it.
        if self.tiers.is_empty() {
            return Err(crate::error::SpecIssue::EmptyTiers.into());
        }

        // Resolve the vulnerability catalogue.
        let mut vulns: Vec<(&str, Vulnerability)> = Vec::with_capacity(self.vulnerabilities.len());
        for (i, def) in self.vulnerabilities.iter().enumerate() {
            let at = format!("vulnerabilities[{i}]");
            if def.id.is_empty() {
                return Err(invalid(format!("{at}.id"), "id must not be empty"));
            }
            if vulns.iter().any(|(id, _)| *id == def.id) {
                return Err(invalid(
                    format!("{at}.id"),
                    format!("duplicate vulnerability id `{}`", snippet(&def.id)),
                ));
            }
            let display_id = match &def.cve {
                Some(cve) => format!("{} ({cve})", def.id),
                None => def.id.clone(),
            };
            let v = match &def.source {
                VulnSource::Vector(s) => {
                    // Cap both the echoed vector and the CVSS parser's
                    // message (which quotes input components) so a
                    // hostile request body never bounces back whole.
                    let vector: BaseVector = s.parse().map_err(|e: ParseVectorError| {
                        invalid(
                            format!("{at}.vector"),
                            format!("`{}`: {}", snippet(s), snippet(&e.to_string())),
                        )
                    })?;
                    Vulnerability::from_cvss_v2(display_id, &vector)
                }
                VulnSource::Explicit {
                    impact,
                    probability,
                    base_score,
                } => {
                    if !(0.0..=10.0).contains(impact) {
                        return Err(invalid(
                            format!("{at}.impact"),
                            format!("{impact} outside 0..=10"),
                        ));
                    }
                    if !(0.0..=1.0).contains(probability) {
                        return Err(invalid(
                            format!("{at}.probability"),
                            format!("{probability} outside 0..=1"),
                        ));
                    }
                    if let Some(b) = base_score {
                        if !(0.0..=10.0).contains(b) {
                            return Err(invalid(
                                format!("{at}.base_score"),
                                format!("{b} outside 0..=10"),
                            ));
                        }
                    }
                    let mut v = Vulnerability::new(display_id, *impact, *probability);
                    v.base_score = *base_score;
                    v
                }
            };
            vulns.push((&def.id, v));
        }
        let vuln_of = |id: &str| vulns.iter().find(|(i, _)| *i == id).map(|(_, v)| v.clone());

        // Build the named attack trees.
        let mut trees: Vec<(&str, AttackTree)> = Vec::with_capacity(self.trees.len());
        for (name, def) in &self.trees {
            let at = format!("trees[{}]", snippet(name));
            if name.is_empty() {
                return Err(invalid("trees", "tree name must not be empty"));
            }
            if trees.iter().any(|(n, _)| *n == name.as_str()) {
                return Err(invalid(
                    "trees",
                    format!("duplicate tree name `{}`", snippet(name)),
                ));
            }
            trees.push((name, build_tree(def, &at, &vuln_of)?));
        }

        // Resolve the tiers.
        let mut tier_specs: Vec<TierSpec> = Vec::with_capacity(self.tiers.len());
        for (i, tier) in self.tiers.iter().enumerate() {
            let at = format!("tiers[{i}]");
            if tier.name.is_empty() {
                return Err(invalid(format!("{at}.name"), "tier name must not be empty"));
            }
            if tier_specs.iter().any(|t| t.name == tier.name) {
                return Err(invalid(
                    format!("{at}.name"),
                    format!("duplicate tier name `{}`", snippet(&tier.name)),
                ));
            }
            if tier.count == 0 {
                return Err(invalid(
                    format!("{at}.count"),
                    "a tier needs at least one server",
                ));
            }
            let tree = match &tier.tree {
                None => None,
                Some(name) => Some(
                    trees
                        .iter()
                        .find(|(n, _)| *n == name.as_str())
                        .map(|(_, t)| t.clone())
                        .ok_or_else(|| {
                            invalid(
                                format!("{at}.tree"),
                                format!("unknown tree `{}`", snippet(name)),
                            )
                        })?,
                ),
            };
            tier_specs.push(TierSpec {
                name: tier.name.clone(),
                count: tier.count,
                params: tier.params.clone(),
                tree,
                entry: tier.entry,
                target: tier.target,
            });
        }

        // Resolve the edges by tier name.
        let index_of = |name: &str| self.tiers.iter().position(|t| t.name == name);
        let mut edges = Vec::with_capacity(self.edges.len());
        for (i, (from, to)) in self.edges.iter().enumerate() {
            let at = format!("edges[{i}]");
            let a = index_of(from)
                .ok_or_else(|| invalid(&at, format!("unknown tier `{}`", snippet(from))))?;
            let b = index_of(to)
                .ok_or_else(|| invalid(&at, format!("unknown tier `{}`", snippet(to))))?;
            edges.push((a, b));
        }

        // The evaluation axes must be usable as-is.
        for (i, d) in self.designs.iter().enumerate() {
            let at = format!("designs[{i}]");
            if d.counts.len() != self.tiers.len() {
                return Err(invalid(
                    at,
                    format!(
                        "design `{}` has {} counts, the scenario has {} tiers",
                        snippet(&d.name),
                        d.counts.len(),
                        self.tiers.len()
                    ),
                ));
            }
            if let Some(t) = d.counts.iter().position(|&c| c == 0) {
                return Err(invalid(
                    at,
                    format!(
                        "design `{}` asks for zero `{}` servers",
                        snippet(&d.name),
                        snippet(&self.tiers[t].name)
                    ),
                ));
            }
        }
        if self.designs.is_empty() {
            return Err(invalid("designs", "at least one design required"));
        }
        if self.policies.is_empty() {
            return Err(invalid("policies", "at least one policy required"));
        }
        if self.metrics.max_paths == 0 {
            return Err(invalid("metrics.max_paths", "must be at least 1"));
        }

        NetworkSpec::try_new(tier_specs, edges)
    }

    /// Serializes the document to its canonical JSON form: two-space
    /// indent, keys in schema order, floats in shortest round-trip form.
    /// [`from_json`](Self::from_json) recovers an equal document,
    /// bit-for-bit.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(SCHEMA));
        let _ = writeln!(out, "  \"name\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(
            out,
            "  \"description\": \"{}\",",
            json_escape(&self.description)
        );

        write_block(&mut out, "vulnerabilities", &self.vulnerabilities, |v| {
            let mut line = format!("{{\"id\": \"{}\"", json_escape(&v.id));
            if let Some(cve) = &v.cve {
                let _ = write!(line, ", \"cve\": \"{}\"", json_escape(cve));
            }
            match &v.source {
                VulnSource::Vector(s) => {
                    let _ = write!(line, ", \"vector\": \"{}\"", json_escape(s));
                }
                VulnSource::Explicit {
                    impact,
                    probability,
                    base_score,
                } => {
                    let _ = write!(
                        line,
                        ", \"impact\": {}, \"probability\": {}",
                        fmt_f64(*impact),
                        fmt_f64(*probability)
                    );
                    if let Some(b) = base_score {
                        let _ = write!(line, ", \"base_score\": {}", fmt_f64(*b));
                    }
                }
            }
            line.push('}');
            line
        });

        write_block(&mut out, "trees", &self.trees, |(name, def)| {
            format!(
                "{{\"name\": \"{}\", \"tree\": {}}}",
                json_escape(name),
                tree_to_json(def)
            )
        });

        write_block(&mut out, "tiers", &self.tiers, |t| {
            let tree = match &t.tree {
                Some(name) => format!("\"{}\"", json_escape(name)),
                None => "null".to_string(),
            };
            format!(
                "{{\"name\": \"{}\", \"count\": {}, \"tree\": {}, \"entry\": {}, \
                 \"target\": {}, \"params\": {}}}",
                json_escape(&t.name),
                t.count,
                tree,
                t.entry,
                t.target,
                params_to_json(&t.params)
            )
        });

        write_block(&mut out, "edges", &self.edges, |(a, b)| {
            format!("[\"{}\", \"{}\"]", json_escape(a), json_escape(b))
        });

        write_block(&mut out, "designs", &self.designs, |d| {
            format!(
                "{{\"name\": \"{}\", \"counts\": [{}]}}",
                json_escape(&d.name),
                d.counts
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        });

        let policies: Vec<String> = self
            .policies
            .iter()
            .map(|p| format!("\"{}\"", json_escape(&p.to_string())))
            .collect();
        let _ = writeln!(out, "  \"policies\": [{}],", policies.join(", "));
        let _ = writeln!(
            out,
            "  \"metrics\": {{\"or_combine\": \"{}\", \"asp\": \"{}\", \"max_paths\": {}}}",
            or_combine_token(self.metrics.or_combine),
            asp_token(self.metrics.asp),
            self.metrics.max_paths
        );
        out.push_str("}\n");
        out
    }

    /// Parses a scenario document from JSON.
    ///
    /// Accepts the canonical form plus these authoring conveniences:
    /// `description`, `designs`, `policies`, `metrics` and per-tier
    /// `params`/`tree`/`entry`/`target` may be omitted (defaults: empty
    /// description, the base-counts design, the paper's `critical>8`
    /// policy, default metrics, enterprise-default parameters, no tree,
    /// not entry, not target). Unknown keys are rejected — a typo must
    /// fail loudly, not silently fall back to a default.
    ///
    /// The returned document is fully validated (see
    /// [`to_spec`](Self::to_spec)).
    ///
    /// # Errors
    ///
    /// [`EvalError::Scenario`] with [`ScenarioError::Json`] for syntax
    /// errors and [`ScenarioError::Invalid`] for schema violations.
    pub fn from_json(text: &str) -> Result<ScenarioDoc, EvalError> {
        let root = parse_json(text).map_err(|e| {
            EvalError::Scenario(ScenarioError::Json {
                line: e.line,
                col: e.col,
                message: e.message,
            })
        })?;
        let doc = decode_doc(&root)?;
        doc.validate()?;
        Ok(doc)
    }

    /// Parses a scenario document from an already-parsed JSON value —
    /// the entry point for containers that embed a scenario inside a
    /// larger document (e.g. the `scenario` field of a `/v1/sweep`
    /// request body). Same schema rules, defaults and full validation as
    /// [`from_json`](Self::from_json).
    ///
    /// # Errors
    ///
    /// [`EvalError::Scenario`] with [`ScenarioError::Invalid`] for schema
    /// violations (syntax errors cannot occur: the input is already
    /// parsed).
    pub fn from_value(value: &Json) -> Result<ScenarioDoc, EvalError> {
        let doc = decode_doc(value)?;
        doc.validate()?;
        Ok(doc)
    }
}

/// Writes one `"key": [...]` block with one array item per line.
fn write_block<T>(out: &mut String, key: &str, items: &[T], render: impl Fn(&T) -> String) {
    use std::fmt::Write as _;
    if items.is_empty() {
        let _ = writeln!(out, "  \"{key}\": [],");
        return;
    }
    let _ = writeln!(out, "  \"{key}\": [");
    for (i, item) in items.iter().enumerate() {
        let sep = if i + 1 < items.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{sep}", render(item));
    }
    let _ = writeln!(out, "  ],");
}

fn tree_to_json(def: &TreeDef) -> String {
    match def {
        TreeDef::Vuln(id) => format!("{{\"vuln\": \"{}\"}}", json_escape(id)),
        TreeDef::And(children) => format!(
            "{{\"and\": [{}]}}",
            children
                .iter()
                .map(tree_to_json)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        TreeDef::Or(children) => format!(
            "{{\"or\": [{}]}}",
            children
                .iter()
                .map(tree_to_json)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// The 13 duration parameters, in [`ServerParams`] declaration order;
/// shared by the serializer and the parser so they can never disagree.
const PARAM_KEYS: [&str; 13] = [
    "hw_mtbf_h",
    "hw_repair_h",
    "os_mtbf_h",
    "os_repair_h",
    "os_patch_h",
    "os_reboot_patch_h",
    "os_reboot_failure_h",
    "svc_mtbf_h",
    "svc_repair_h",
    "svc_patch_h",
    "svc_reboot_patch_h",
    "svc_reboot_failure_h",
    "patch_interval_h",
];

fn param_durations(p: &ServerParams) -> [Durations; 13] {
    [
        p.hw_mtbf,
        p.hw_repair,
        p.os_mtbf,
        p.os_repair,
        p.os_patch,
        p.os_reboot_patch,
        p.os_reboot_failure,
        p.svc_mtbf,
        p.svc_repair,
        p.svc_patch,
        p.svc_reboot_patch,
        p.svc_reboot_failure,
        p.patch_interval,
    ]
}

fn params_to_json(p: &ServerParams) -> String {
    let fields: Vec<String> = PARAM_KEYS
        .iter()
        .zip(param_durations(p))
        .map(|(k, d)| format!("\"{k}\": {}", fmt_f64(d.as_hours())))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn build_tree(
    def: &TreeDef,
    at: &str,
    vuln_of: &dyn Fn(&str) -> Option<Vulnerability>,
) -> Result<AttackTree, EvalError> {
    match def {
        TreeDef::Vuln(id) => vuln_of(id)
            .map(AttackTree::leaf)
            .ok_or_else(|| invalid(at, format!("unknown vulnerability `{}`", snippet(id)))),
        TreeDef::And(children) | TreeDef::Or(children) => {
            if children.is_empty() {
                return Err(invalid(at, "a gate needs at least one child"));
            }
            let built: Vec<AttackTree> = children
                .iter()
                .map(|c| build_tree(c, at, vuln_of))
                .collect::<Result<_, _>>()?;
            Ok(match def {
                TreeDef::And(_) => AttackTree::and(built),
                _ => AttackTree::or(built),
            })
        }
    }
}

fn or_combine_token(oc: OrCombine) -> &'static str {
    match oc {
        OrCombine::Max => "max",
        OrCombine::NoisyOr => "noisy-or",
    }
}

fn asp_token(asp: AspStrategy) -> &'static str {
    match asp {
        AspStrategy::MaxPath => "max-path",
        AspStrategy::NoisyOrPaths => "noisy-or-paths",
        AspStrategy::Reliability => "reliability",
    }
}

// ---------------------------------------------------------------------------
// JSON → ScenarioDoc decoding.

/// A required object, with every present key checked against `allowed`.
fn as_obj<'a>(j: &'a Json, at: &str, allowed: &[&str]) -> Result<&'a [(String, Json)], EvalError> {
    let entries = j
        .as_obj()
        .ok_or_else(|| invalid(at, "expected an object"))?;
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(invalid(at, format!("unknown key `{}`", snippet(k))));
        }
    }
    Ok(entries)
}

fn get<'a>(entries: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req<'a>(entries: &'a [(String, Json)], at: &str, key: &str) -> Result<&'a Json, EvalError> {
    get(entries, key).ok_or_else(|| invalid(at, format!("missing key `{key}`")))
}

fn as_str(j: &Json, at: &str) -> Result<String, EvalError> {
    j.as_str()
        .map(str::to_string)
        .ok_or_else(|| invalid(at, "expected a string"))
}

fn as_bool(j: &Json, at: &str) -> Result<bool, EvalError> {
    j.as_bool().ok_or_else(|| invalid(at, "expected a boolean"))
}

fn as_f64(j: &Json, at: &str) -> Result<f64, EvalError> {
    j.as_f64().ok_or_else(|| invalid(at, "expected a number"))
}

fn as_count(j: &Json, at: &str, max: f64) -> Result<f64, EvalError> {
    let x = as_f64(j, at)?;
    if x.fract() != 0.0 || x < 0.0 || x > max {
        return Err(invalid(at, format!("expected an integer in 0..={max}")));
    }
    Ok(x)
}

fn as_arr<'a>(j: &'a Json, at: &str) -> Result<&'a [Json], EvalError> {
    j.as_arr().ok_or_else(|| invalid(at, "expected an array"))
}

fn decode_doc(root: &Json) -> Result<ScenarioDoc, EvalError> {
    let entries = as_obj(
        root,
        "document",
        &[
            "schema",
            "name",
            "title",
            "description",
            "vulnerabilities",
            "trees",
            "tiers",
            "edges",
            "designs",
            "policies",
            "metrics",
        ],
    )?;

    let schema = as_str(req(entries, "document", "schema")?, "schema")?;
    if schema != SCHEMA {
        return Err(invalid(
            "schema",
            format!(
                "`{}` is not supported (expected `{SCHEMA}`)",
                snippet(&schema)
            ),
        ));
    }
    let name = as_str(req(entries, "document", "name")?, "name")?;
    let title = as_str(req(entries, "document", "title")?, "title")?;
    let description = match get(entries, "description") {
        Some(j) => as_str(j, "description")?,
        None => String::new(),
    };

    let mut vulnerabilities = Vec::new();
    for (i, j) in as_arr(
        req(entries, "document", "vulnerabilities")?,
        "vulnerabilities",
    )?
    .iter()
    .enumerate()
    {
        vulnerabilities.push(decode_vuln(j, &format!("vulnerabilities[{i}]"))?);
    }

    let mut trees = Vec::new();
    for (i, j) in as_arr(req(entries, "document", "trees")?, "trees")?
        .iter()
        .enumerate()
    {
        let at = format!("trees[{i}]");
        let e = as_obj(j, &at, &["name", "tree"])?;
        let tree_name = as_str(req(e, &at, "name")?, &format!("{at}.name"))?;
        let def = decode_tree(req(e, &at, "tree")?, &format!("{at}.tree"))?;
        trees.push((tree_name, def));
    }

    let mut tiers = Vec::new();
    for (i, j) in as_arr(req(entries, "document", "tiers")?, "tiers")?
        .iter()
        .enumerate()
    {
        tiers.push(decode_tier(j, &format!("tiers[{i}]"))?);
    }

    let mut edges = Vec::new();
    for (i, j) in as_arr(req(entries, "document", "edges")?, "edges")?
        .iter()
        .enumerate()
    {
        let at = format!("edges[{i}]");
        let pair = as_arr(j, &at)?;
        if pair.len() != 2 {
            return Err(invalid(&at, "expected a [from, to] pair of tier names"));
        }
        edges.push((
            as_str(&pair[0], &format!("{at}[0]"))?,
            as_str(&pair[1], &format!("{at}[1]"))?,
        ));
    }

    // Only a *missing* `designs` key defaults to the base design; an
    // explicit empty array is a schema violation (caught by `validate`),
    // the same way an explicit empty `policies` is.
    let designs_present = get(entries, "designs").is_some();
    let designs = match get(entries, "designs") {
        None => Vec::new(),
        Some(j) => {
            let mut out = Vec::new();
            for (i, d) in as_arr(j, "designs")?.iter().enumerate() {
                let at = format!("designs[{i}]");
                let e = as_obj(d, &at, &["name", "counts"])?;
                let dname = as_str(req(e, &at, "name")?, &format!("{at}.name"))?;
                let counts_at = format!("{at}.counts");
                let mut counts = Vec::new();
                for (k, c) in as_arr(req(e, &at, "counts")?, &counts_at)?
                    .iter()
                    .enumerate()
                {
                    counts.push(
                        as_count(c, &format!("{counts_at}[{k}]"), f64::from(u32::MAX))? as u32,
                    );
                }
                out.push(Design::new(dname, counts));
            }
            out
        }
    };

    let policies = match get(entries, "policies") {
        None => vec![PatchPolicy::CriticalOnly(8.0)],
        Some(j) => {
            let mut out = Vec::new();
            for (i, p) in as_arr(j, "policies")?.iter().enumerate() {
                let at = format!("policies[{i}]");
                let s = as_str(p, &at)?;
                out.push(
                    s.parse::<PatchPolicy>()
                        .map_err(|e| invalid(&at, e.to_string()))?,
                );
            }
            out
        }
    };

    let metrics = match get(entries, "metrics") {
        None => MetricsConfig::default(),
        Some(j) => decode_metrics(j)?,
    };

    let mut doc = ScenarioDoc {
        name,
        title,
        description,
        vulnerabilities,
        trees,
        tiers,
        edges,
        designs,
        policies,
        metrics,
    };
    if !designs_present && !doc.tiers.is_empty() {
        doc.designs = vec![doc.base_design()];
    }
    Ok(doc)
}

fn decode_vuln(j: &Json, at: &str) -> Result<VulnDef, EvalError> {
    let e = as_obj(
        j,
        at,
        &["id", "cve", "vector", "impact", "probability", "base_score"],
    )?;
    let id = as_str(req(e, at, "id")?, &format!("{at}.id"))?;
    let cve = match get(e, "cve") {
        Some(c) => Some(as_str(c, &format!("{at}.cve"))?),
        None => None,
    };
    let source = match (get(e, "vector"), get(e, "impact")) {
        (Some(v), None) => {
            if get(e, "probability").is_some() || get(e, "base_score").is_some() {
                return Err(invalid(
                    at,
                    "give either `vector` or explicit `impact`/`probability`, not both",
                ));
            }
            VulnSource::Vector(as_str(v, &format!("{at}.vector"))?)
        }
        (None, Some(imp)) => VulnSource::Explicit {
            impact: as_f64(imp, &format!("{at}.impact"))?,
            probability: as_f64(req(e, at, "probability")?, &format!("{at}.probability"))?,
            base_score: match get(e, "base_score") {
                Some(b) => Some(as_f64(b, &format!("{at}.base_score"))?),
                None => None,
            },
        },
        (Some(_), Some(_)) => {
            return Err(invalid(
                at,
                "give either `vector` or explicit `impact`/`probability`, not both",
            ));
        }
        (None, None) => {
            return Err(invalid(
                at,
                "needs a `vector` or an explicit `impact`/`probability` pair",
            ));
        }
    };
    Ok(VulnDef { id, cve, source })
}

fn decode_tree(j: &Json, at: &str) -> Result<TreeDef, EvalError> {
    let e = as_obj(j, at, &["vuln", "and", "or"])?;
    match (get(e, "vuln"), get(e, "and"), get(e, "or")) {
        (Some(v), None, None) => Ok(TreeDef::Vuln(as_str(v, &format!("{at}.vuln"))?)),
        (None, Some(children), None) => Ok(TreeDef::And(decode_children(children, at, "and")?)),
        (None, None, Some(children)) => Ok(TreeDef::Or(decode_children(children, at, "or")?)),
        _ => Err(invalid(
            at,
            "a tree node is exactly one of {\"vuln\": id}, {\"and\": [...]}, {\"or\": [...]}",
        )),
    }
}

fn decode_children(j: &Json, at: &str, gate: &str) -> Result<Vec<TreeDef>, EvalError> {
    as_arr(j, &format!("{at}.{gate}"))?
        .iter()
        .enumerate()
        .map(|(i, c)| decode_tree(c, &format!("{at}.{gate}[{i}]")))
        .collect()
}

fn decode_tier(j: &Json, at: &str) -> Result<TierDef, EvalError> {
    let e = as_obj(
        j,
        at,
        &["name", "count", "tree", "entry", "target", "params"],
    )?;
    let name = as_str(req(e, at, "name")?, &format!("{at}.name"))?;
    let count = as_count(
        req(e, at, "count")?,
        &format!("{at}.count"),
        f64::from(u32::MAX),
    )? as u32;
    let tree = match get(e, "tree") {
        None => None,
        Some(t) if t.is_null() => None,
        Some(t) => Some(as_str(t, &format!("{at}.tree"))?),
    };
    let entry = match get(e, "entry") {
        Some(b) => as_bool(b, &format!("{at}.entry"))?,
        None => false,
    };
    let target = match get(e, "target") {
        Some(b) => as_bool(b, &format!("{at}.target"))?,
        None => false,
    };
    let params = match get(e, "params") {
        None => ServerParams::builder(name.clone()).build(),
        Some(p) => decode_params(p, &format!("{at}.params"), &name)?,
    };
    Ok(TierDef {
        name,
        count,
        params,
        tree,
        entry,
        target,
    })
}

fn decode_params(j: &Json, at: &str, tier_name: &str) -> Result<ServerParams, EvalError> {
    let e = as_obj(j, at, &PARAM_KEYS)?;
    let mut hours = [0.0f64; 13];
    for (slot, key) in hours.iter_mut().zip(PARAM_KEYS) {
        let field = format!("{at}.{key}");
        let x = as_f64(req(e, at, key)?, &field)?;
        if !x.is_finite() || x <= 0.0 {
            return Err(invalid(field, "a mean duration must be a positive number"));
        }
        *slot = x;
    }
    let d = |i: usize| Durations::hours(hours[i]);
    Ok(ServerParams {
        name: tier_name.to_string(),
        hw_mtbf: d(0),
        hw_repair: d(1),
        os_mtbf: d(2),
        os_repair: d(3),
        os_patch: d(4),
        os_reboot_patch: d(5),
        os_reboot_failure: d(6),
        svc_mtbf: d(7),
        svc_repair: d(8),
        svc_patch: d(9),
        svc_reboot_patch: d(10),
        svc_reboot_failure: d(11),
        patch_interval: d(12),
    })
}

fn decode_metrics(j: &Json) -> Result<MetricsConfig, EvalError> {
    let e = as_obj(j, "metrics", &["or_combine", "asp", "max_paths"])?;
    let mut m = MetricsConfig::default();
    if let Some(oc) = get(e, "or_combine") {
        m.or_combine = match as_str(oc, "metrics.or_combine")?.as_str() {
            "max" => OrCombine::Max,
            "noisy-or" => OrCombine::NoisyOr,
            other => {
                return Err(invalid(
                    "metrics.or_combine",
                    format!("`{}` is not one of max, noisy-or", snippet(other)),
                ));
            }
        };
    }
    if let Some(asp) = get(e, "asp") {
        m.asp = match as_str(asp, "metrics.asp")?.as_str() {
            "max-path" => AspStrategy::MaxPath,
            "noisy-or-paths" => AspStrategy::NoisyOrPaths,
            "reliability" => AspStrategy::Reliability,
            other => {
                return Err(invalid(
                    "metrics.asp",
                    format!(
                        "`{}` is not one of max-path, noisy-or-paths, reliability",
                        snippet(other)
                    ),
                ));
            }
        };
    }
    if let Some(mp) = get(e, "max_paths") {
        let x = as_count(mp, "metrics.max_paths", 9.007_199_254_740_992e15)?;
        m.max_paths = x as usize;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_doc() -> ScenarioDoc {
        let mut doc = ScenarioDoc::new("tiny", "Tiny two-tier network");
        doc.description = "A web tier feeding a database.".into();
        doc.vulnerabilities = vec![
            VulnDef {
                id: "v-web".into(),
                cve: Some("CVE-2016-0001".into()),
                source: VulnSource::Vector("AV:N/AC:L/Au:N/C:C/I:C/A:C".into()),
            },
            VulnDef {
                id: "v-db".into(),
                cve: None,
                source: VulnSource::Explicit {
                    impact: 2.9,
                    probability: 0.86,
                    base_score: None,
                },
            },
        ];
        doc.trees = vec![
            (
                "web".into(),
                TreeDef::Or(vec![TreeDef::Vuln("v-web".into())]),
            ),
            ("db".into(), TreeDef::Or(vec![TreeDef::Vuln("v-db".into())])),
        ];
        doc.tiers = vec![
            TierDef {
                name: "web".into(),
                count: 2,
                params: ServerParams::builder("web").build(),
                tree: Some("web".into()),
                entry: true,
                target: false,
            },
            TierDef {
                name: "db".into(),
                count: 1,
                params: ServerParams::builder("db").build(),
                tree: Some("db".into()),
                entry: false,
                target: true,
            },
        ];
        doc.edges = vec![("web".into(), "db".into())];
        doc.designs = vec![doc.base_design()];
        doc
    }

    #[test]
    fn round_trips_through_canonical_json() {
        let doc = tiny_doc();
        let json = doc.to_json();
        let back = ScenarioDoc::from_json(&json).unwrap();
        assert_eq!(back, doc);
        // And the canonical form is a fixed point.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn to_spec_builds_the_expected_network() {
        let spec = tiny_doc().to_spec().unwrap();
        assert_eq!(spec.tiers().len(), 2);
        assert_eq!(spec.total_servers(), 3);
        assert_eq!(spec.edges(), [(0, 1)]);
        let harm = spec.build_harm();
        assert_eq!(harm.graph().host_count(), 3);
        // The CVE id is folded into the display id.
        let m = harm.metrics(&MetricsConfig::default());
        assert_eq!(m.exploitable_vulnerabilities, 3);
    }

    #[test]
    fn defaults_fill_in_when_optional_keys_are_missing() {
        let json = r#"{
            "schema": "redeval-scenario/1",
            "name": "mini",
            "title": "Minimal",
            "vulnerabilities": [{"id": "v", "impact": 10, "probability": 1}],
            "trees": [{"name": "t", "tree": {"vuln": "v"}}],
            "tiers": [
                {"name": "web", "count": 2, "tree": "t", "entry": true, "target": true}
            ],
            "edges": []
        }"#;
        let doc = ScenarioDoc::from_json(json).unwrap();
        assert_eq!(doc.description, "");
        assert_eq!(doc.policies, vec![PatchPolicy::CriticalOnly(8.0)]);
        assert_eq!(doc.metrics, MetricsConfig::default());
        assert_eq!(doc.designs, vec![Design::new("2 WEB", vec![2])]);
        // Omitted params are the enterprise defaults, named after the tier.
        assert_eq!(doc.tiers[0].params, ServerParams::builder("web").build());
        doc.validate().unwrap();
    }

    #[test]
    fn explicit_empty_designs_fail_instead_of_silently_defaulting() {
        // A *missing* designs key defaults to the base design; an
        // explicit `"designs": []` is a schema violation, matching the
        // behaviour of an explicit empty `policies`.
        let json = tiny_doc().to_json();
        assert!(json.contains("\"designs\": ["));
        let emptied = {
            let start = json.find("\"designs\": [").unwrap();
            let end = start + json[start..].find("],").unwrap() + 2;
            format!("{}\"designs\": [],{}", &json[..start], &json[end..])
        };
        let e = ScenarioDoc::from_json(&emptied).unwrap_err();
        assert!(
            e.to_string().contains("at least one design"),
            "expected a designs error, got: {e}"
        );
    }

    #[test]
    fn unknown_keys_and_bad_schema_fail_loudly() {
        let bad_key = tiny_doc().to_json().replace("\"title\"", "\"titel\"");
        let e = ScenarioDoc::from_json(&bad_key).unwrap_err();
        assert!(e.to_string().contains("titel"), "{e}");
        let bad_schema = tiny_doc().to_json().replace("scenario/1", "scenario/9");
        let e = ScenarioDoc::from_json(&bad_schema).unwrap_err();
        assert!(e.to_string().contains("not supported"), "{e}");
        let e = ScenarioDoc::from_json("{ nope").unwrap_err();
        assert!(matches!(
            e,
            EvalError::Scenario(ScenarioError::Json { line: 1, .. })
        ));
    }

    #[test]
    fn validation_pinpoints_the_offending_field() {
        let cases: Vec<(ScenarioDoc, &str)> = vec![
            (
                {
                    let mut d = tiny_doc();
                    d.name = "no spaces!".into();
                    d
                },
                "name",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.vulnerabilities.push(d.vulnerabilities[0].clone());
                    d
                },
                "vulnerabilities[2].id",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.trees[0].1 = TreeDef::Vuln("ghost".into());
                    d
                },
                "unknown vulnerability `ghost`",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.tiers[0].tree = Some("ghost".into());
                    d
                },
                "unknown tree `ghost`",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.tiers[0].count = 0;
                    d
                },
                "tiers[0].count",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.edges.push(("web".into(), "ghost".into()));
                    d
                },
                "edges[1]",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.designs = vec![Design::new("bad", vec![1])];
                    d
                },
                "designs[0]",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.designs = vec![Design::new("zero", vec![1, 0])];
                    d
                },
                "zero `db` servers",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.policies.clear();
                    d
                },
                "policies",
            ),
            (
                {
                    let mut d = tiny_doc();
                    d.vulnerabilities[1].source = VulnSource::Explicit {
                        impact: 11.0,
                        probability: 0.5,
                        base_score: None,
                    };
                    d
                },
                "vulnerabilities[1].impact",
            ),
        ];
        for (doc, needle) in cases {
            let e = doc.validate().unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "expected `{needle}` in `{e}`"
            );
        }
    }

    #[test]
    fn structural_network_errors_come_back_as_invalid_spec() {
        let mut no_entry = tiny_doc();
        no_entry.tiers[0].entry = false;
        assert!(matches!(
            no_entry.validate(),
            Err(EvalError::InvalidSpec(crate::error::SpecIssue::NoEntryTier))
        ));
        let mut no_target = tiny_doc();
        no_target.tiers[1].target = false;
        assert!(matches!(
            no_target.validate(),
            Err(EvalError::InvalidSpec(
                crate::error::SpecIssue::NoTargetTier
            ))
        ));
    }

    #[test]
    fn vector_and_explicit_sources_are_mutually_exclusive() {
        let json = r#"{
            "schema": "redeval-scenario/1",
            "name": "x", "title": "x",
            "vulnerabilities": [
                {"id": "v", "vector": "AV:N/AC:L/Au:N/C:C/I:C/A:C", "impact": 10}
            ],
            "trees": [], "tiers": [], "edges": []
        }"#;
        let e = ScenarioDoc::from_json(json).unwrap_err();
        assert!(e.to_string().contains("not both"), "{e}");
    }

    #[test]
    fn from_value_matches_from_json() {
        let doc = tiny_doc();
        let value = parse_json(&doc.to_json()).unwrap();
        assert_eq!(ScenarioDoc::from_value(&value).unwrap(), doc);
        // And it validates, not just decodes.
        let bad = parse_json(r#"{"schema": "redeval-scenario/1"}"#).unwrap();
        assert!(ScenarioDoc::from_value(&bad).is_err());
    }

    #[test]
    fn error_messages_cap_echoed_user_strings() {
        use crate::output::SNIPPET_MAX;
        // Every message that quotes document text must stay bounded even
        // when the document smuggles in kilobytes of junk.
        let huge = "Q".repeat(64 * 1024);
        let cases: Vec<ScenarioDoc> = vec![
            {
                let mut d = tiny_doc();
                d.name = format!("bad name {huge}");
                d
            },
            {
                let mut d = tiny_doc();
                d.trees[0].1 = TreeDef::Vuln(huge.clone());
                d
            },
            {
                let mut d = tiny_doc();
                d.tiers[0].tree = Some(huge.clone());
                d
            },
            {
                let mut d = tiny_doc();
                d.edges.push((huge.clone(), "db".into()));
                d
            },
            {
                let mut d = tiny_doc();
                d.designs = vec![Design::new(huge.clone(), vec![1])];
                d
            },
            {
                let mut d = tiny_doc();
                d.vulnerabilities[0].source = VulnSource::Vector(huge.clone());
                d
            },
        ];
        for doc in cases {
            let msg = doc.validate().unwrap_err().to_string();
            assert!(
                msg.len() < 4 * SNIPPET_MAX + 200,
                "error echoed {} bytes: {}…",
                msg.len(),
                &msg[..120.min(msg.len())]
            );
            assert!(!msg.contains(&huge[..200]), "raw input echoed back");
        }
        // Schema-level echoes (unknown keys, bad schema tag) are capped
        // too.
        let json = format!(
            "{{\"schema\": \"redeval-scenario/1\", \"name\": \"x\", \"title\": \"x\", \
             \"vulnerabilities\": [], \"trees\": [], \"tiers\": [], \"edges\": [], \
             \"{huge}\": 1}}"
        );
        let msg = ScenarioDoc::from_json(&json).unwrap_err().to_string();
        assert!(msg.len() < 4 * SNIPPET_MAX + 200, "{} bytes", msg.len());
    }

    #[test]
    fn policies_round_trip_with_exact_thresholds() {
        let mut doc = tiny_doc();
        doc.policies = vec![
            PatchPolicy::None,
            PatchPolicy::CriticalOnly(7.15),
            PatchPolicy::All,
        ];
        let back = ScenarioDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(back.policies, doc.policies);
    }

    #[test]
    fn metrics_tokens_cover_every_variant() {
        for oc in [OrCombine::Max, OrCombine::NoisyOr] {
            for asp in [
                AspStrategy::MaxPath,
                AspStrategy::NoisyOrPaths,
                AspStrategy::Reliability,
            ] {
                let mut doc = tiny_doc();
                doc.metrics = MetricsConfig {
                    or_combine: oc,
                    asp,
                    max_paths: 1234,
                };
                let back = ScenarioDoc::from_json(&doc.to_json()).unwrap();
                assert_eq!(back.metrics, doc.metrics);
            }
        }
    }
}
