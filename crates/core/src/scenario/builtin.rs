//! The bundled scenario gallery.
//!
//! [`paper_case_study`] is the reference document: the paper's Figure-2
//! network expressed as data. [`case_study::network`]
//! is built *from* it, so every golden report continuously proves that the
//! scenario path reproduces the paper bit-for-bit. The other entries open
//! non-paper workloads — deeper stacks, multiple entry and target tiers,
//! branching topologies — all runnable through
//! [`Sweep::from_scenario`](crate::Sweep::from_scenario) and the
//! `redeval eval --scenario` CLI without recompiling anything.

use redeval_avail::{Durations, ServerParams};
use redeval_harm::MetricsConfig;

use crate::case_study;
use crate::spec::Design;
use crate::PatchPolicy;

use super::{ScenarioDoc, TierDef, TreeDef, VulnDef, VulnSource};

/// One gallery entry: machine name, one-line description and the builder.
#[derive(Debug, Clone, Copy)]
pub struct BuiltinScenario {
    /// Machine name (CLI key and export-file stem).
    pub name: &'static str,
    /// One-line description (shown by `redeval scenario list`).
    pub about: &'static str,
    /// Builds the document.
    pub build: fn() -> ScenarioDoc,
}

/// Every bundled scenario, in gallery order.
pub const BUILTINS: &[BuiltinScenario] = &[
    BuiltinScenario {
        name: "paper_case_study",
        about: "the paper's Figure-2 network (1 DNS + 2 WEB + 2 APP + 1 DB), Tables I/IV data",
        build: paper_case_study,
    },
    BuiltinScenario {
        name: "ecommerce",
        about: "six-tier e-commerce stack (CDN to database) with a vuln-free cache tier",
        build: ecommerce,
    },
    BuiltinScenario {
        name: "iot_fleet",
        about: "IoT sensor fleet with two entry tiers and two attack targets",
        build: iot_fleet,
    },
    BuiltinScenario {
        name: "microservices_mesh",
        about: "seven-tier microservice mesh with a branching call graph",
        build: microservices_mesh,
    },
];

/// Looks a bundled scenario up by name.
pub fn find(name: &str) -> Option<&'static BuiltinScenario> {
    BUILTINS.iter().find(|s| s.name == name)
}

/// Shorthand for a vector-sourced vulnerability record.
fn vuln(id: &str, cve: Option<&str>, vector: &str) -> VulnDef {
    VulnDef {
        id: id.into(),
        cve: cve.map(Into::into),
        source: VulnSource::Vector(vector.into()),
    }
}

/// Shorthand for an explicit impact/probability record.
fn vuln_explicit(id: &str, impact: f64, probability: f64) -> VulnDef {
    VulnDef {
        id: id.into(),
        cve: None,
        source: VulnSource::Explicit {
            impact,
            probability,
            base_score: None,
        },
    }
}

fn leaf(id: &str) -> TreeDef {
    TreeDef::Vuln(id.into())
}

/// The paper's complete case study as a scenario document: Table I
/// vulnerabilities (as reconstructed CVSS v2 vectors), the four attack
/// trees, Table IV parameters, the Figure-2 topology and the five
/// redundancy designs of Section IV.
pub fn paper_case_study() -> ScenarioDoc {
    let mut doc = ScenarioDoc::new(
        "paper_case_study",
        "Ge, Kim & Kim (DSN 2017) — example enterprise network of Figure 2",
    );
    doc.description = "1 DNS + 2 WEB + 2 APP + 1 DB; attacker enters at the DMZ \
                       (DNS and web), the database is the attack goal. Vulnerability \
                       data from Table I, SRN rates from Table IV."
        .into();
    doc.vulnerabilities = case_study::VULNERABILITIES
        .iter()
        .map(|r| vuln(r.id, Some(r.cve), r.vector))
        .collect();
    doc.trees = vec![
        ("dns".into(), TreeDef::Or(vec![leaf("v1dns")])),
        (
            "web".into(),
            TreeDef::Or(vec![
                leaf("v1web"),
                leaf("v2web"),
                leaf("v3web"),
                TreeDef::And(vec![leaf("v4web"), leaf("v5web")]),
            ]),
        ),
        (
            "app".into(),
            TreeDef::Or(vec![
                leaf("v1app"),
                leaf("v2app"),
                leaf("v3app"),
                TreeDef::And(vec![leaf("v4app"), leaf("v5app")]),
            ]),
        ),
        (
            "db".into(),
            TreeDef::Or(vec![
                leaf("v1db"),
                leaf("v2db"),
                TreeDef::And(vec![leaf("v3db"), leaf("v4db")]),
                leaf("v5db"),
            ]),
        ),
    ];
    doc.tiers = vec![
        TierDef {
            name: "dns".into(),
            count: 1,
            params: case_study::dns_params(),
            tree: Some("dns".into()),
            entry: true,
            target: false,
        },
        TierDef {
            name: "web".into(),
            count: 2,
            params: case_study::web_params(),
            tree: Some("web".into()),
            entry: true,
            target: false,
        },
        TierDef {
            name: "app".into(),
            count: 2,
            params: case_study::app_params(),
            tree: Some("app".into()),
            entry: false,
            target: false,
        },
        TierDef {
            name: "db".into(),
            count: 1,
            params: case_study::db_params(),
            tree: Some("db".into()),
            entry: false,
            target: true,
        },
    ];
    doc.edges = vec![
        ("dns".into(), "web".into()),
        ("web".into(), "app".into()),
        ("app".into(), "db".into()),
    ];
    doc.designs = case_study::five_designs();
    doc.policies = vec![PatchPolicy::CriticalOnly(8.0)];
    doc.metrics = MetricsConfig::default();
    doc
}

/// A six-tier e-commerce stack: CDN → load balancer → web → API →
/// {cache, DB}. The cache carries no exploitable vulnerability (a
/// `"tree": null` tier), so attack paths must take the direct API→DB hop
/// while availability still counts the cache servers.
pub fn ecommerce() -> ScenarioDoc {
    let mut doc = ScenarioDoc::new("ecommerce", "Six-tier e-commerce stack (CDN to database)");
    doc.description = "CDN and load-balancer front a web/API stack with a \
                       vulnerability-free cache tier; the customer database is \
                       the target. Demonstrates >4 tiers and a null-tree tier."
        .into();
    doc.vulnerabilities = vec![
        vuln("cdn-takeover", None, "AV:N/AC:M/Au:N/C:P/I:P/A:N"),
        vuln("lb-header-smuggle", None, "AV:N/AC:M/Au:N/C:P/I:P/A:P"),
        vuln(
            "web-rce",
            Some("CVE-2017-5638"),
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
        ),
        vuln_explicit("web-xss-chain", 6.4, 0.86),
        vuln("api-auth-bypass", None, "AV:N/AC:L/Au:N/C:C/I:P/A:N"),
        vuln_explicit("api-ssrf", 6.4, 0.8),
        vuln(
            "db-sqli",
            Some("CVE-2016-6662"),
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
        ),
        vuln_explicit("db-priv-esc", 10.0, 0.39),
    ];
    doc.trees = vec![
        ("cdn".into(), TreeDef::Or(vec![leaf("cdn-takeover")])),
        ("lb".into(), TreeDef::Or(vec![leaf("lb-header-smuggle")])),
        (
            "web".into(),
            TreeDef::Or(vec![leaf("web-rce"), leaf("web-xss-chain")]),
        ),
        (
            "api".into(),
            TreeDef::Or(vec![
                leaf("api-auth-bypass"),
                TreeDef::And(vec![leaf("api-ssrf"), leaf("web-xss-chain")]),
            ]),
        ),
        (
            "db".into(),
            TreeDef::Or(vec![
                leaf("db-sqli"),
                TreeDef::And(vec![leaf("api-ssrf"), leaf("db-priv-esc")]),
            ]),
        ),
    ];
    let front_params = |name: &str| {
        ServerParams::builder(name)
            .service_patch(Durations::minutes(5.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
            .build()
    };
    let app_params = |name: &str| {
        ServerParams::builder(name)
            .service_patch(Durations::minutes(15.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(20.0), Durations::minutes(10.0))
            .build()
    };
    doc.tiers = vec![
        TierDef {
            name: "cdn".into(),
            count: 2,
            params: front_params("cdn"),
            tree: Some("cdn".into()),
            entry: true,
            target: false,
        },
        TierDef {
            name: "lb".into(),
            count: 2,
            params: front_params("lb"),
            tree: Some("lb".into()),
            entry: false,
            target: false,
        },
        TierDef {
            name: "web".into(),
            count: 3,
            params: app_params("web"),
            tree: Some("web".into()),
            entry: false,
            target: false,
        },
        TierDef {
            name: "api".into(),
            count: 2,
            params: app_params("api"),
            tree: Some("api".into()),
            entry: false,
            target: false,
        },
        TierDef {
            name: "cache".into(),
            count: 2,
            params: front_params("cache"),
            tree: None,
            entry: false,
            target: false,
        },
        TierDef {
            name: "db".into(),
            count: 1,
            params: ServerParams::builder("db")
                .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
                .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
                .build(),
            tree: Some("db".into()),
            entry: false,
            target: true,
        },
    ];
    doc.edges = vec![
        ("cdn".into(), "lb".into()),
        ("lb".into(), "web".into()),
        ("web".into(), "api".into()),
        ("api".into(), "cache".into()),
        ("api".into(), "db".into()),
        ("cache".into(), "db".into()),
    ];
    doc.designs = vec![
        doc.base_design(),
        Design::new("beefy web edge", vec![2, 2, 4, 2, 2, 1]),
        Design::new("replicated db", vec![2, 2, 3, 2, 2, 2]),
    ];
    doc.policies = vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All];
    doc
}

/// An IoT sensor fleet: sensors and the gateway's exposed management
/// interface are **both** entry tiers, and compromising either the
/// historian or the SCADA controller achieves the goal — a
/// multi-entry/multi-target topology the paper's Figure 2 cannot express.
pub fn iot_fleet() -> ScenarioDoc {
    let mut doc = ScenarioDoc::new(
        "iot_fleet",
        "IoT sensor fleet with two entry tiers and two targets",
    );
    doc.description = "Sensors and the gateway management interface are both \
                       attacker-reachable; the data historian and the SCADA \
                       controller are both attack goals."
        .into();
    doc.vulnerabilities = vec![
        vuln("sensor-default-creds", None, "AV:N/AC:L/Au:N/C:P/I:P/A:P"),
        vuln_explicit("sensor-fw-downgrade", 6.4, 0.61),
        vuln(
            "gw-mgmt-rce",
            Some("CVE-2016-10401"),
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
        ),
        vuln("broker-weak-acl", None, "AV:N/AC:M/Au:S/C:P/I:P/A:N"),
        vuln_explicit("historian-sqli", 6.4, 0.86),
        vuln("scada-proto-abuse", None, "AV:A/AC:L/Au:N/C:C/I:C/A:C"),
        vuln_explicit("scada-logic-bomb", 10.0, 0.39),
    ];
    doc.trees = vec![
        (
            "sensor".into(),
            TreeDef::Or(vec![
                leaf("sensor-default-creds"),
                leaf("sensor-fw-downgrade"),
            ]),
        ),
        ("gateway".into(), TreeDef::Or(vec![leaf("gw-mgmt-rce")])),
        ("broker".into(), TreeDef::Or(vec![leaf("broker-weak-acl")])),
        (
            "historian".into(),
            TreeDef::Or(vec![leaf("historian-sqli")]),
        ),
        (
            "scada".into(),
            TreeDef::Or(vec![
                leaf("scada-proto-abuse"),
                TreeDef::And(vec![leaf("broker-weak-acl"), leaf("scada-logic-bomb")]),
            ]),
        ),
    ];
    let embedded = |name: &str| {
        ServerParams::builder(name)
            .os_failure(Durations::hours(720.0), Durations::hours(2.0))
            .service_failure(Durations::hours(168.0), Durations::hours(1.0))
            .service_patch(Durations::minutes(30.0), Durations::minutes(10.0))
            .os_patch(Durations::minutes(45.0), Durations::minutes(15.0))
            .patch_interval(Durations::days(90.0))
            .build()
    };
    let backend = |name: &str| {
        ServerParams::builder(name)
            .service_patch(Durations::minutes(15.0), Durations::minutes(5.0))
            .os_patch(Durations::minutes(20.0), Durations::minutes(10.0))
            .build()
    };
    doc.tiers = vec![
        TierDef {
            name: "sensor".into(),
            count: 3,
            params: embedded("sensor"),
            tree: Some("sensor".into()),
            entry: true,
            target: false,
        },
        TierDef {
            name: "gateway".into(),
            count: 2,
            params: embedded("gateway"),
            tree: Some("gateway".into()),
            entry: true,
            target: false,
        },
        TierDef {
            name: "broker".into(),
            count: 1,
            params: backend("broker"),
            tree: Some("broker".into()),
            entry: false,
            target: false,
        },
        TierDef {
            name: "historian".into(),
            count: 1,
            params: backend("historian"),
            tree: Some("historian".into()),
            entry: false,
            target: true,
        },
        TierDef {
            name: "scada".into(),
            count: 1,
            params: backend("scada"),
            tree: Some("scada".into()),
            entry: false,
            target: true,
        },
    ];
    doc.edges = vec![
        ("sensor".into(), "gateway".into()),
        ("gateway".into(), "broker".into()),
        ("broker".into(), "historian".into()),
        ("broker".into(), "scada".into()),
    ];
    doc.designs = vec![
        doc.base_design(),
        Design::new("redundant backend", vec![3, 2, 2, 2, 2]),
    ];
    doc.policies = vec![
        PatchPolicy::None,
        PatchPolicy::CriticalOnly(8.0),
        PatchPolicy::All,
    ];
    doc
}

/// A seven-tier microservice mesh with a branching call graph: the edge
/// proxies fan out through auth into three service lanes (orders →
/// payments, orders → queue, inventory) that reconverge on the database.
pub fn microservices_mesh() -> ScenarioDoc {
    let mut doc = ScenarioDoc::new(
        "microservices_mesh",
        "Seven-tier microservice mesh with a branching call graph",
    );
    doc.description = "Edge proxies feed an auth service that fans out into \
                       orders/payments, a work queue and inventory, all \
                       reconverging on the shared database."
        .into();
    doc.vulnerabilities = vec![
        vuln("edge-path-traversal", None, "AV:N/AC:L/Au:N/C:P/I:N/A:N"),
        vuln("edge-tls-downgrade", None, "AV:N/AC:M/Au:N/C:P/I:P/A:N"),
        vuln(
            "auth-jwt-forgery",
            Some("CVE-2015-9235"),
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
        ),
        vuln_explicit("orders-idor", 6.4, 1.0),
        vuln_explicit("payments-replay", 6.4, 0.61),
        vuln(
            "queue-deserialization",
            Some("CVE-2015-5254"),
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
        ),
        vuln_explicit("inventory-grpc-fuzz", 2.9, 0.86),
        vuln("db-weak-auth", None, "AV:N/AC:L/Au:S/C:C/I:C/A:C"),
        vuln_explicit("db-priv-esc", 10.0, 0.39),
    ];
    doc.trees = vec![
        (
            "edge".into(),
            TreeDef::Or(vec![
                leaf("edge-path-traversal"),
                leaf("edge-tls-downgrade"),
            ]),
        ),
        ("auth".into(), TreeDef::Or(vec![leaf("auth-jwt-forgery")])),
        ("orders".into(), TreeDef::Or(vec![leaf("orders-idor")])),
        (
            "payments".into(),
            TreeDef::Or(vec![TreeDef::And(vec![
                leaf("payments-replay"),
                leaf("orders-idor"),
            ])]),
        ),
        (
            "queue".into(),
            TreeDef::Or(vec![leaf("queue-deserialization")]),
        ),
        (
            "inventory".into(),
            TreeDef::Or(vec![leaf("inventory-grpc-fuzz")]),
        ),
        (
            "db".into(),
            TreeDef::Or(vec![
                leaf("db-weak-auth"),
                TreeDef::And(vec![leaf("inventory-grpc-fuzz"), leaf("db-priv-esc")]),
            ]),
        ),
    ];
    let svc = |name: &str| {
        ServerParams::builder(name)
            .service_patch(Durations::minutes(5.0), Durations::minutes(2.0))
            .os_patch(Durations::minutes(10.0), Durations::minutes(5.0))
            .patch_interval(Durations::days(14.0))
            .build()
    };
    let tier = |name: &str, count: u32, tree: Option<&str>, entry: bool, target: bool| TierDef {
        name: name.into(),
        count,
        params: svc(name),
        tree: tree.map(Into::into),
        entry,
        target,
    };
    doc.tiers = vec![
        tier("edge", 2, Some("edge"), true, false),
        tier("auth", 2, Some("auth"), false, false),
        tier("orders", 2, Some("orders"), false, false),
        tier("payments", 1, Some("payments"), false, false),
        tier("queue", 1, Some("queue"), false, false),
        tier("inventory", 1, Some("inventory"), false, false),
        tier("db", 1, Some("db"), false, true),
    ];
    doc.edges = vec![
        ("edge".into(), "auth".into()),
        ("auth".into(), "orders".into()),
        ("auth".into(), "inventory".into()),
        ("orders".into(), "payments".into()),
        ("orders".into(), "queue".into()),
        ("payments".into(), "db".into()),
        ("queue".into(), "db".into()),
        ("inventory".into(), "db".into()),
    ];
    doc.designs = vec![
        doc.base_design(),
        Design::new("scaled lanes", vec![2, 2, 3, 2, 2, 2, 1]),
        Design::new("replicated db", vec![2, 2, 2, 1, 1, 1, 2]),
    ];
    doc.policies = vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All];
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sweep;

    #[test]
    fn gallery_names_are_unique_and_findable() {
        for (i, a) in BUILTINS.iter().enumerate() {
            assert!(find(a.name).is_some());
            for b in &BUILTINS[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate scenario name");
            }
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn every_builtin_validates_and_round_trips() {
        for s in BUILTINS {
            let doc = (s.build)();
            assert_eq!(doc.name, s.name, "doc name must match gallery key");
            doc.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            let back = ScenarioDoc::from_json(&doc.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(back, doc, "{} round-trips", s.name);
        }
    }

    #[test]
    fn every_builtin_evaluates_end_to_end() {
        for s in BUILTINS {
            let doc = (s.build)();
            let evals = Sweep::from_scenario(&doc)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name))
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(evals.len(), doc.designs.len() * doc.policies.len());
            for e in &evals {
                assert!(e.coa > 0.9 && e.coa < 1.0, "{}: COA {}", s.name, e.coa);
                assert!(
                    e.before.attack_paths > 0,
                    "{}: no attack paths before patch",
                    s.name
                );
            }
        }
    }

    #[test]
    fn paper_doc_resolves_to_the_figure_2_network() {
        // `case_study::network()` is *derived from* this document, so it
        // cannot serve as an independent oracle; everything here is
        // checked against the paper's literal Figure-2/Table-I values.
        let spec = paper_case_study().to_spec().unwrap();
        assert_eq!(spec.edges(), [(0, 1), (1, 2), (2, 3)]);
        let expect = [
            ("dns", 1u32, true, false),
            ("web", 2, true, false),
            ("app", 2, false, false),
            ("db", 1, false, true),
        ];
        assert_eq!(spec.tiers().len(), expect.len());
        for (t, (name, count, entry, target)) in spec.tiers().iter().zip(expect) {
            assert_eq!(t.name, name);
            assert_eq!(t.count, count);
            assert_eq!(t.entry, entry);
            assert_eq!(t.target, target);
            assert_eq!(t.params.name, name);
        }
        // Table-I tree impacts: 10.0 / 12.9 / 16.4 / 12.9.
        for (t, impact) in spec.tiers().iter().zip([10.0, 12.9, 16.4, 12.9]) {
            let tree = t.tree.as_ref().expect("every paper tier has a tree");
            assert!(
                (tree.impact() - impact).abs() < 1e-12,
                "{}: impact {} != {impact}",
                t.name,
                tree.impact()
            );
        }
        // Patch cycles reconstruct Table V's MTTRs: 40/35/60/55 minutes.
        for (t, minutes) in spec.tiers().iter().zip([40.0, 35.0, 60.0, 55.0]) {
            assert!(
                (t.params.patch_cycle().as_hours() - minutes / 60.0).abs() < 1e-12,
                "{}: patch cycle",
                t.name
            );
        }
        // And the Figure-2 HARM shape: 6 hosts, 8 paths, 3 entry points.
        let m = spec
            .build_harm()
            .metrics(&redeval_harm::MetricsConfig::default());
        assert_eq!(spec.build_harm().graph().host_count(), 6);
        assert_eq!(m.attack_paths, 8);
        assert_eq!(m.entry_points, 3);
        assert!((m.attack_impact - 52.2).abs() < 1e-9);
    }

    #[test]
    fn gallery_covers_non_paper_topologies() {
        // Acceptance: at least one bundled scenario with >4 tiers or
        // multiple entry/target tiers.
        let six = ecommerce();
        assert!(six.tiers.len() > 4);
        let iot = iot_fleet();
        assert_eq!(iot.tiers.iter().filter(|t| t.entry).count(), 2);
        assert_eq!(iot.tiers.iter().filter(|t| t.target).count(), 2);
        let mesh = microservices_mesh();
        assert_eq!(mesh.tiers.len(), 7);
    }
}
