//! Seeded scenario generators: archetype families at arbitrary scale.
//!
//! Each generator is a pure function `(family, params, seed) →`
//! [`ScenarioDoc`] built on a tiny splitmix64 PRNG — no wall-clock, no
//! global state, no platform-dependent math (jitter uses only IEEE-754
//! `+`/`*`/`/`, never transcendentals), so the same inputs produce the
//! same document **byte for byte** on every platform and thread count.
//! Every emitted document passes strict validation by construction:
//! knobs are clamped into family-specific ranges rather than rejected,
//! per-tier host counts on exploitable tiers are capped so the attack
//! path count stays well under `metrics.max_paths`, and topologies always
//! carry at least one entry tier, one target tier and no self-edges.
//!
//! Three families cover the archetypes the paper's 6-host case study
//! cannot: [`Family::EcommerceFleet`] (a deep N-tier chain — hundreds of
//! tiers of fleet-scale availability load around a 3-tier attack
//! surface), [`Family::IotSwarm`] (many entry tiers with shallow trees
//! funnelling into a small backend) and [`Family::MicroserviceMesh`]
//! (a layered DAG with realistic fan-out edges, every tier exploitable).
//!
//! ```
//! use redeval::scenario::generate::{generate, Family, GenParams};
//!
//! let doc = generate(Family::IotSwarm, &GenParams::default(), 42);
//! doc.validate().expect("generated documents always validate");
//! assert_eq!(doc.to_json(), generate(Family::IotSwarm, &GenParams::default(), 42).to_json());
//! ```

use redeval_avail::{Durations, ServerParams};
use redeval_harm::MetricsConfig;

use super::{ScenarioDoc, TierDef, TreeDef, VulnDef, VulnSource};
use crate::spec::Design;
use crate::PatchPolicy;

/// A scenario archetype family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Deep N-tier e-commerce chain at fleet scale: an exploitable edge
    /// tier, hundreds of unexploitable service tiers, an exploitable
    /// API tier mid-chain and a database target, with bypass edges that
    /// keep the attack surface three tiers deep.
    EcommerceFleet,
    /// IoT swarm: many sensor entry tiers with shallow attack trees,
    /// funnelling through a gateway and an unexploitable broker into a
    /// historian target.
    IotSwarm,
    /// Microservice mesh: an edge tier fanning out over three layers of
    /// exploitable services into a database target, with extra fan-out
    /// edges between layers.
    MicroserviceMesh,
}

/// All families, in documentation order.
pub const FAMILIES: [Family; 3] = [
    Family::EcommerceFleet,
    Family::IotSwarm,
    Family::MicroserviceMesh,
];

impl Family {
    /// Canonical machine key (`[a-z_]+`; used in document names, the
    /// CLI and the `/v1/generate` body).
    pub fn key(self) -> &'static str {
        match self {
            Family::EcommerceFleet => "ecommerce_fleet",
            Family::IotSwarm => "iot_swarm",
            Family::MicroserviceMesh => "microservice_mesh",
        }
    }

    /// One-line description for listings.
    pub fn about(self) -> &'static str {
        match self {
            Family::EcommerceFleet => {
                "deep N-tier e-commerce chain; fleet-scale availability, 3-tier attack surface"
            }
            Family::IotSwarm => "many sensor entry tiers with shallow trees behind a small backend",
            Family::MicroserviceMesh => {
                "layered service DAG with fan-out edges, every tier exploitable"
            }
        }
    }

    /// Parses a family key; accepts `-` for `_` and short aliases
    /// (`ecommerce`, `iot`, `mesh`).
    pub fn parse(s: &str) -> Option<Family> {
        match s.replace('-', "_").as_str() {
            "ecommerce_fleet" | "ecommerce" => Some(Family::EcommerceFleet),
            "iot_swarm" | "iot" => Some(Family::IotSwarm),
            "microservice_mesh" | "microservices" | "mesh" => Some(Family::MicroserviceMesh),
            _ => None,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Generator knobs. Out-of-range values are clamped into the family's
/// supported range (see [`GenParams::clamped`]) instead of rejected, so
/// [`generate`] is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Total number of tiers (family-specific range; e-commerce supports
    /// hundreds).
    pub tiers: u32,
    /// Baseline redundancy bound: host counts are drawn from
    /// `1..=redundancy` (clamped to `1..=8`, the serve-API bound).
    pub redundancy: u32,
    /// Number of alternative designs beyond the baseline (`0..=6`).
    pub designs: u32,
    /// Number of patch policies (`1..=4`), a prefix of
    /// `[critical>8, all, critical>6.5, none]`.
    pub policies: u32,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            tiers: 12,
            redundancy: 3,
            designs: 2,
            policies: 2,
        }
    }
}

impl GenParams {
    /// The clamped knobs actually used for a family (also embedded in
    /// the generated document's name).
    pub fn clamped(&self, family: Family) -> GenParams {
        let (lo, hi) = match family {
            Family::EcommerceFleet => (3, 512),
            Family::IotSwarm => (4, 256),
            Family::MicroserviceMesh => (5, 64),
        };
        GenParams {
            tiers: self.tiers.clamp(lo, hi),
            redundancy: self.redundancy.clamp(1, 8),
            designs: self.designs.min(6),
            policies: self.policies.clamp(1, 4),
        }
    }
}

/// The pinned generator corpus: the exact `(family, params, seed)`
/// triples whose canonical exports are byte-pinned under
/// `tests/golden/gen/` and regenerated by the CI `gen-corpus` job. The
/// last entry is the fleet-scale (≥100-tier) smoke-eval document.
pub const PINNED: &[(Family, GenParams, u64)] = &[
    (
        Family::EcommerceFleet,
        GenParams {
            tiers: 8,
            redundancy: 3,
            designs: 2,
            policies: 2,
        },
        1,
    ),
    (
        Family::IotSwarm,
        GenParams {
            tiers: 7,
            redundancy: 3,
            designs: 2,
            policies: 2,
        },
        2,
    ),
    (
        Family::MicroserviceMesh,
        GenParams {
            tiers: 9,
            redundancy: 2,
            designs: 2,
            policies: 2,
        },
        3,
    ),
    (
        Family::EcommerceFleet,
        GenParams {
            tiers: 120,
            redundancy: 2,
            designs: 1,
            policies: 1,
        },
        7,
    ),
];

/// splitmix64: tiny, statistically solid, and trivially portable — the
/// whole generator state is one `u64`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits (exact in f64).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % u64::from(n)) as u32
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(hi - lo + 1)
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// `base` scaled by a uniform factor in `[1-spread, 1+spread]`.
    /// Multiplication and addition only, so the result is bit-identical
    /// on every IEEE-754 platform.
    fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        base * (1.0 + spread * (2.0 * self.unit() - 1.0))
    }
}

/// Per-role rate template, in hours (`*_h`) and minutes (`*_m`);
/// realized per tier with ±15 % jitter so every tier is a distinct
/// availability model (fleet-scale load on the solver, while the
/// count-independent analysis cache still deduplicates across designs).
struct Template {
    hw_mtbf_h: f64,
    hw_repair_h: f64,
    os_mtbf_h: f64,
    os_repair_h: f64,
    os_patch_m: f64,
    os_reboot_patch_m: f64,
    os_reboot_failure_m: f64,
    svc_mtbf_h: f64,
    svc_repair_m: f64,
    svc_patch_m: f64,
    svc_reboot_patch_m: f64,
    svc_reboot_failure_m: f64,
    patch_interval_h: f64,
}

/// Hardened front-line servers: frequent small patches.
const FRONT: Template = Template {
    hw_mtbf_h: 87_600.0,
    hw_repair_h: 1.0,
    os_mtbf_h: 1_440.0,
    os_repair_h: 1.0,
    os_patch_m: 10.0,
    os_reboot_patch_m: 10.0,
    os_reboot_failure_m: 10.0,
    svc_mtbf_h: 336.0,
    svc_repair_m: 30.0,
    svc_patch_m: 5.0,
    svc_reboot_patch_m: 5.0,
    svc_reboot_failure_m: 5.0,
    patch_interval_h: 720.0,
};

/// Mid-chain application servers.
const MID: Template = Template {
    hw_mtbf_h: 61_320.0,
    hw_repair_h: 2.0,
    os_mtbf_h: 2_160.0,
    os_repair_h: 1.5,
    os_patch_m: 20.0,
    os_reboot_patch_m: 10.0,
    os_reboot_failure_m: 12.0,
    svc_mtbf_h: 504.0,
    svc_repair_m: 45.0,
    svc_patch_m: 15.0,
    svc_reboot_patch_m: 5.0,
    svc_reboot_failure_m: 8.0,
    patch_interval_h: 720.0,
};

/// Stateful data stores: slow, careful patch windows.
const DATA: Template = Template {
    hw_mtbf_h: 43_800.0,
    hw_repair_h: 4.0,
    os_mtbf_h: 2_880.0,
    os_repair_h: 2.0,
    os_patch_m: 30.0,
    os_reboot_patch_m: 10.0,
    os_reboot_failure_m: 15.0,
    svc_mtbf_h: 720.0,
    svc_repair_m: 60.0,
    svc_patch_m: 10.0,
    svc_reboot_patch_m: 5.0,
    svc_reboot_failure_m: 10.0,
    patch_interval_h: 1_440.0,
};

/// Constrained embedded devices: flaky, rarely patched.
const EMBEDDED: Template = Template {
    hw_mtbf_h: 26_280.0,
    hw_repair_h: 8.0,
    os_mtbf_h: 720.0,
    os_repair_h: 2.0,
    os_patch_m: 45.0,
    os_reboot_patch_m: 15.0,
    os_reboot_failure_m: 20.0,
    svc_mtbf_h: 168.0,
    svc_repair_m: 60.0,
    svc_patch_m: 30.0,
    svc_reboot_patch_m: 10.0,
    svc_reboot_failure_m: 15.0,
    patch_interval_h: 2_160.0,
};

impl Template {
    fn realize(&self, name: &str, rng: &mut Rng) -> ServerParams {
        const S: f64 = 0.15;
        ServerParams::builder(name)
            .hardware(
                Durations::hours(rng.jitter(self.hw_mtbf_h, S)),
                Durations::hours(rng.jitter(self.hw_repair_h, S)),
            )
            .os_failure(
                Durations::hours(rng.jitter(self.os_mtbf_h, S)),
                Durations::hours(rng.jitter(self.os_repair_h, S)),
            )
            .os_patch(
                Durations::minutes(rng.jitter(self.os_patch_m, S)),
                Durations::minutes(rng.jitter(self.os_reboot_patch_m, S)),
            )
            .os_reboot_after_failure(Durations::minutes(rng.jitter(self.os_reboot_failure_m, S)))
            .service_failure(
                Durations::hours(rng.jitter(self.svc_mtbf_h, S)),
                Durations::minutes(rng.jitter(self.svc_repair_m, S)),
            )
            .service_patch(
                Durations::minutes(rng.jitter(self.svc_patch_m, S)),
                Durations::minutes(rng.jitter(self.svc_reboot_patch_m, S)),
            )
            .service_reboot_after_failure(Durations::minutes(
                rng.jitter(self.svc_reboot_failure_m, S),
            ))
            .patch_interval(Durations::hours(rng.jitter(self.patch_interval_h, S)))
            .build()
    }
}

/// Known-good CVSS v2 base vectors spanning the severity range.
const VECTORS: [&str; 6] = [
    "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    "AV:N/AC:L/Au:N/C:C/I:P/A:N",
    "AV:N/AC:M/Au:N/C:P/I:P/A:P",
    "AV:N/AC:M/Au:S/C:P/I:P/A:N",
    "AV:A/AC:L/Au:N/C:C/I:C/A:C",
    "AV:N/AC:L/Au:N/C:P/I:N/A:N",
];

/// A tier plus the maximum host count any design may assign to it (the
/// cap that bounds attack-path blowup on exploitable tiers).
struct TierPlan {
    def: TierDef,
    max_count: u32,
}

/// Scratch state shared by the family builders.
struct Builder {
    rng: Rng,
    vulns: Vec<VulnDef>,
    trees: Vec<(String, TreeDef)>,
    tiers: Vec<TierPlan>,
    edges: Vec<(String, String)>,
}

impl Builder {
    fn new(seed: u64) -> Builder {
        Builder {
            rng: Rng::new(seed),
            vulns: Vec::new(),
            trees: Vec::new(),
            tiers: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Generates 1–3 vulnerabilities plus a shallow attack tree for
    /// `tier`, registering both, and returns the tree name.
    fn grow_tree(&mut self, tier: &str, max_leaves: u32) -> String {
        let n = self.rng.range(1, max_leaves.clamp(1, 3));
        let mut leaves = Vec::new();
        for j in 0..n {
            let id = format!("{tier}_v{j}");
            let source = if self.rng.chance(0.7) {
                let v = VECTORS[self.rng.below(VECTORS.len() as u32) as usize];
                VulnSource::Vector(v.into())
            } else {
                VulnSource::Explicit {
                    impact: self.rng.jitter(6.0, 0.6),
                    probability: 0.15 + 0.8 * self.rng.unit(),
                    base_score: None,
                }
            };
            let cve = if self.rng.chance(0.25) {
                Some(format!(
                    "CVE-20{}-{}",
                    self.rng.range(17, 25),
                    self.rng.range(1000, 9999)
                ))
            } else {
                None
            };
            self.vulns.push(VulnDef {
                id: id.clone(),
                cve,
                source,
            });
            leaves.push(TreeDef::Vuln(id));
        }
        let root = match leaves.len() {
            1 => leaves.pop().unwrap(),
            2 if self.rng.chance(0.3) => TreeDef::And(leaves),
            3 if self.rng.chance(0.4) => {
                let deep = TreeDef::And(leaves.split_off(1));
                leaves.push(deep);
                TreeDef::Or(leaves)
            }
            _ => TreeDef::Or(leaves),
        };
        let name = format!("{tier}_tree");
        self.trees.push((name.clone(), root));
        name
    }

    /// Adds a tier; `max_count` caps its host count across all designs.
    #[allow(clippy::too_many_arguments)]
    fn tier(
        &mut self,
        name: &str,
        template: &Template,
        max_count: u32,
        tree: Option<String>,
        entry: bool,
        target: bool,
    ) {
        let count = self.rng.range(1, max_count);
        let params = template.realize(name, &mut self.rng);
        self.tiers.push(TierPlan {
            def: TierDef {
                name: name.into(),
                count,
                params,
                tree,
                entry,
                target,
            },
            max_count,
        });
    }

    fn edge(&mut self, from: &str, to: &str) {
        let e = (from.to_string(), to.to_string());
        if e.0 != e.1 && !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// Baseline design plus `extra` mutated alternatives, all counts in
    /// `1..=max_count` per tier.
    fn designs(&mut self, extra: u32) -> Vec<Design> {
        let base: Vec<u32> = self.tiers.iter().map(|t| t.def.count).collect();
        let mut designs = vec![Design::new("base", base.clone())];
        for d in 1..=extra {
            let counts: Vec<u32> = self
                .tiers
                .iter()
                .zip(&base)
                .map(|(t, &c)| {
                    if self.rng.chance(0.35) {
                        let bumped = if self.rng.chance(0.5) {
                            c + 1
                        } else {
                            c.saturating_sub(1)
                        };
                        bumped.clamp(1, t.max_count)
                    } else {
                        c
                    }
                })
                .collect();
            designs.push(Design::new(format!("alt_{d}"), counts));
        }
        designs
    }

    fn finish(
        mut self,
        name: String,
        title: String,
        description: String,
        extra_designs: u32,
        policies: u32,
    ) -> ScenarioDoc {
        let designs = self.designs(extra_designs);
        let policy_pool = [
            PatchPolicy::CriticalOnly(8.0),
            PatchPolicy::All,
            PatchPolicy::CriticalOnly(6.5),
            PatchPolicy::None,
        ];
        ScenarioDoc {
            name,
            title,
            description,
            vulnerabilities: self.vulns,
            trees: self.trees,
            tiers: self.tiers.into_iter().map(|t| t.def).collect(),
            edges: self.edges,
            designs,
            policies: policy_pool[..policies as usize].to_vec(),
            metrics: MetricsConfig::default(),
        }
    }
}

/// Generates a scenario document. Pure and total: the same
/// `(family, params, seed)` always yields the same bytes, knobs are
/// clamped per family, and the result always passes
/// [`ScenarioDoc::validate`].
pub fn generate(family: Family, params: &GenParams, seed: u64) -> ScenarioDoc {
    let p = params.clamped(family);
    let name = format!(
        "gen_{}_s{}_t{}_r{}_d{}_p{}",
        family.key(),
        seed,
        p.tiers,
        p.redundancy,
        p.designs,
        p.policies
    );
    let title = format!("Generated {} (seed {seed})", family.key());
    let description = format!(
        "Seeded {} scenario: {} tiers, redundancy {}, {} designs, {} policies. \
         Emitted by redeval::scenario::generate; byte-deterministic in (family, params, seed).",
        family.key(),
        p.tiers,
        p.redundancy,
        p.designs + 1,
        p.policies
    );
    let mut b = Builder::new(seed);
    match family {
        Family::EcommerceFleet => ecommerce(&mut b, &p),
        Family::IotSwarm => iot(&mut b, &p),
        Family::MicroserviceMesh => mesh(&mut b, &p),
    }
    b.finish(name, title, description, p.designs, p.policies)
}

/// Deep chain `edge → svc… → api → svc… → db` where only `edge`, `api`
/// and `db` carry attack trees; bypass edges `edge → api → db` keep the
/// attack surface exactly three tiers while the unexploitable middle
/// tiers provide fleet-scale availability load. Attack paths ≤ 8³.
fn ecommerce(b: &mut Builder, p: &GenParams) {
    let n = p.tiers as usize;
    let api_idx = (n - 1) / 2; // in 1..=n-2 for n ≥ 3
    let edge_tree = b.grow_tree("edge", 2);
    b.tier("edge", &FRONT, p.redundancy, Some(edge_tree), true, false);
    for i in 1..n - 1 {
        if i == api_idx {
            let tree = b.grow_tree("api", 3);
            b.tier("api", &MID, p.redundancy, Some(tree), false, false);
        } else {
            b.tier(
                &format!("svc{i:03}"),
                &MID,
                p.redundancy,
                None,
                false,
                false,
            );
        }
    }
    let db_tree = b.grow_tree("db", 2);
    b.tier("db", &DATA, p.redundancy, Some(db_tree), false, true);

    let names: Vec<String> = b.tiers.iter().map(|t| t.def.name.clone()).collect();
    for w in names.windows(2) {
        b.edge(&w[0], &w[1]);
    }
    // The attack route: the middle tiers are unexploitable, so the
    // exploitable trio must be directly connected.
    b.edge("edge", "api");
    b.edge("api", "db");
}

/// `tiers - 3` sensor entry tiers with shallow trees, all feeding a
/// gateway; the unexploitable broker sits between the gateway and the
/// historian target, with a gateway → historian maintenance path that
/// carries the attack. Attack paths ≤ (tiers-3) · 8 · 2 · 2.
fn iot(b: &mut Builder, p: &GenParams) {
    let sensors = p.tiers as usize - 3;
    for i in 0..sensors {
        let name = format!("sensor{i:03}");
        let tree = b.grow_tree(&name, 2);
        b.tier(&name, &EMBEDDED, p.redundancy, Some(tree), true, false);
    }
    let gw_tree = b.grow_tree("gateway", 3);
    b.tier("gateway", &FRONT, 2, Some(gw_tree), false, false);
    b.tier("broker", &MID, 2, None, false, false);
    let hist_tree = b.grow_tree("historian", 2);
    b.tier("historian", &DATA, 2, Some(hist_tree), false, true);

    for i in 0..sensors {
        let name = format!("sensor{i:03}");
        b.edge(&name, "gateway");
    }
    b.edge("gateway", "broker");
    b.edge("broker", "historian");
    b.edge("gateway", "historian");
}

/// Edge tier fanning out over three exploitable middle layers into a
/// database target. Every layer-k tier has exactly one layer-(k-1)
/// parent plus a bounded number of extra fan-out edges, so the DAG has
/// realistic fan-out while the route count stays small.
fn mesh(b: &mut Builder, p: &GenParams) {
    let w = p.tiers as usize - 2; // middle tiers, ≥ 3
    let l1 = w.div_ceil(3);
    let l2 = (w - l1).div_ceil(2);
    let l3 = w - l1 - l2;
    let layer_name = |layer: usize, i: usize| format!("svc{layer}_{i:02}");

    let edge_tree = b.grow_tree("edge", 2);
    b.tier("edge", &FRONT, p.redundancy, Some(edge_tree), true, false);
    for (layer, width) in [(1, l1), (2, l2), (3, l3)] {
        for i in 0..width {
            let name = layer_name(layer, i);
            let tree = b.grow_tree(&name, 3);
            let template = if layer == 2 { &MID } else { &FRONT };
            b.tier(&name, template, 2, Some(tree), false, false);
        }
    }
    let db_tree = b.grow_tree("db", 2);
    b.tier("db", &DATA, 2, Some(db_tree), false, true);

    for i in 0..l1 {
        b.edge("edge", &layer_name(1, i));
    }
    for i in 0..l2 {
        let parent = b.rng.below(l1 as u32) as usize;
        b.edge(&layer_name(1, parent), &layer_name(2, i));
    }
    for i in 0..l3 {
        let parent = b.rng.below(l2 as u32) as usize;
        b.edge(&layer_name(2, parent), &layer_name(3, i));
    }
    // Bounded extra fan-out: realistic multi-parent meshes without
    // route-count blowup.
    for _ in 0..4 {
        if l2 > 0 && b.rng.chance(0.6) {
            let from = b.rng.below(l1 as u32) as usize;
            let to = b.rng.below(l2 as u32) as usize;
            b.edge(&layer_name(1, from), &layer_name(2, to));
        }
        if l3 > 0 && b.rng.chance(0.6) {
            let from = b.rng.below(l2 as u32) as usize;
            let to = b.rng.below(l3 as u32) as usize;
            b.edge(&layer_name(2, from), &layer_name(3, to));
        }
    }
    for i in 0..l3 {
        b.edge(&layer_name(3, i), "db");
    }
    // Keep the goal reachable even in degenerate splits: the last
    // layer-2 tier always has a direct data path.
    if l3 == 0 {
        for i in 0..l2 {
            b.edge(&layer_name(2, i), "db");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_bytes() {
        for &(family, params, seed) in PINNED {
            let a = generate(family, &params, seed).to_json();
            let b = generate(family, &params, seed).to_json();
            assert_eq!(a, b, "{family} seed {seed} not byte-deterministic");
        }
    }

    #[test]
    fn every_seed_validates_and_round_trips() {
        for family in FAMILIES {
            for seed in 0..20 {
                let params = GenParams {
                    tiers: 3 + seed as u32 * 5,
                    redundancy: 1 + seed as u32 % 8,
                    designs: seed as u32 % 7,
                    policies: 1 + seed as u32 % 4,
                };
                let doc = generate(family, &params, seed);
                doc.validate()
                    .unwrap_or_else(|e| panic!("{family} seed {seed}: generated doc invalid: {e}"));
                let back = ScenarioDoc::from_json(&doc.to_json()).expect("round-trip parses");
                assert_eq!(
                    doc, back,
                    "{family} seed {seed}: round-trip changed the doc"
                );
            }
        }
    }

    #[test]
    fn knobs_are_clamped_not_rejected() {
        let extreme = GenParams {
            tiers: u32::MAX,
            redundancy: 0,
            designs: u32::MAX,
            policies: 0,
        };
        for family in FAMILIES {
            let doc = generate(family, &extreme, 9);
            doc.validate().expect("clamped extremes validate");
            let p = extreme.clamped(family);
            assert!(p.redundancy == 1 && p.designs == 6 && p.policies == 1);
            assert_eq!(doc.tiers.len(), p.tiers as usize);
            assert_eq!(doc.designs.len(), 7);
            assert_eq!(doc.policies.len(), 1);
        }
    }

    #[test]
    fn family_shapes_hold() {
        let doc = generate(
            Family::EcommerceFleet,
            &GenParams {
                tiers: 200,
                ..GenParams::default()
            },
            4,
        );
        assert_eq!(doc.tiers.len(), 200);
        assert_eq!(doc.tiers.iter().filter(|t| t.tree.is_some()).count(), 3);

        let doc = generate(
            Family::IotSwarm,
            &GenParams {
                tiers: 40,
                ..GenParams::default()
            },
            4,
        );
        assert_eq!(doc.tiers.iter().filter(|t| t.entry).count(), 37);

        let doc = generate(
            Family::MicroserviceMesh,
            &GenParams {
                tiers: 20,
                ..GenParams::default()
            },
            4,
        );
        assert!(doc.edges.len() > doc.tiers.len(), "mesh should fan out");
        assert!(doc.tiers.iter().all(|t| t.tree.is_some()));
    }

    #[test]
    fn family_keys_parse_back() {
        for family in FAMILIES {
            assert_eq!(Family::parse(family.key()), Some(family));
            assert_eq!(Family::parse(&family.key().replace('_', "-")), Some(family));
        }
        assert_eq!(Family::parse("ecommerce"), Some(Family::EcommerceFleet));
        assert_eq!(Family::parse("iot"), Some(Family::IotSwarm));
        assert_eq!(Family::parse("mesh"), Some(Family::MicroserviceMesh));
        assert_eq!(Family::parse("nope"), None);
    }
}
