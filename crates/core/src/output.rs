//! Structured report output: a typed value model with deterministic,
//! dependency-free serializers.
//!
//! Every reproduction artifact (paper tables, figures, sweeps, region
//! checks) is built as a [`Report`] — an ordered list of notes, key/value
//! blocks, [`Table`]s and [`Series`] — and rendered through one of four
//! serializers: canonical JSON ([`Report::to_json`]), RFC-4180-style CSV
//! ([`Report::to_csv`]), aligned text ([`Report::to_text`]) and markdown
//! tables ([`Table::to_markdown`]). The JSON form is the regression
//! currency: CI replays every report and byte-compares it against the
//! committed corpus under `tests/golden/`.
//!
//! # Determinism guarantees (DESIGN.md §6)
//!
//! * **Stable order** — objects serialize their keys in declaration
//!   order, items in insertion order; nothing is hash-ordered.
//! * **Canonical floats** — finite values use Rust's shortest
//!   round-trip `Display` form ([`fmt_f64`]), which is
//!   platform-independent and loses no bits; a report differs only when
//!   a computed number differs.
//! * **Non-finite policy** — JSON has no NaN/Infinity literals, so
//!   non-finite floats serialize as the JSON *strings* `"NaN"`,
//!   `"Infinity"` and `"-Infinity"`; CSV and text use the same spellings
//!   unquoted.
//! * **Escaping** — JSON strings escape `"`, `\` and all control
//!   characters (`\n`/`\r`/`\t` short forms, `\u00XX` otherwise); CSV
//!   fields containing a comma, quote or newline are quoted with internal
//!   quotes doubled.
//!
//! # Examples
//!
//! ```
//! use redeval::output::{Report, Table, Value};
//!
//! let mut table = Table::new("coa", ["design", "coa"]);
//! table.add_row(vec![Value::from("1+2+2+1"), Value::from(0.99707)]);
//! let mut report = Report::new("demo", "Demo report");
//! report.table(table);
//! assert!(report.to_json().contains("\"rows\""));
//! assert!(report.to_csv().contains("1+2+2+1,0.99707"));
//! ```

use std::fmt::Write as _;

/// Identifies the schema of serialized reports (bumped on breaking
/// changes to the JSON/CSV shape).
pub const SCHEMA: &str = "redeval-report/1";

/// Formats a float canonically: shortest round-trip representation for
/// finite values (Rust `Display`), `NaN` / `Infinity` / `-Infinity`
/// otherwise. This is the only float-to-string path in the serializers.
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "Infinity".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else {
        format!("{x}")
    }
}

/// Human-oriented float formatting for the text renderer: at most six
/// decimal places, trailing zeros trimmed. (JSON and CSV keep full
/// precision via [`fmt_f64`].)
fn fmt_f64_text(x: f64) -> String {
    if !x.is_finite() {
        return fmt_f64(x);
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Escapes a string for inclusion inside a JSON string literal (without
/// the surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Longest run of characters [`snippet`] keeps from an untrusted string.
pub const SNIPPET_MAX: usize = 48;

/// Caps and sanitizes an untrusted string for embedding in an error
/// message: at most [`SNIPPET_MAX`] characters (a trailing `…` marks the
/// cut), with quotes, backslashes and control characters escaped.
///
/// Every error path that quotes user-supplied text back (scenario field
/// values, JSON object keys, patch-policy spellings) must route it
/// through here, so a hostile or oversized input — a megabyte request
/// body, a key full of newlines — can never be echoed at full length or
/// corrupt a log line / structured error body.
///
/// # Examples
///
/// ```
/// use redeval::output::snippet;
/// assert_eq!(snippet("ecommerce"), "ecommerce");
/// assert_eq!(snippet("a\nb"), "a\\nb");
/// assert_eq!(snippet(&"x".repeat(100)), format!("{}…", "x".repeat(48)));
/// ```
pub fn snippet(s: &str) -> String {
    let mut kept: String = s.chars().take(SNIPPET_MAX).collect();
    let truncated = s.chars().nth(SNIPPET_MAX).is_some();
    kept = json_escape(&kept);
    if truncated {
        kept.push('…');
    }
    kept
}

/// The canonical byte string a content-addressed result cache hashes: a
/// compact JSON object `{"kind": KIND, "params": PARAMS, "body": BODY}`
/// where `params` renders through [`Json::to_compact`] and
/// `canonical_body` must already be canonical JSON text (it is embedded
/// verbatim). Two requests produce the same bytes **iff** kind, params
/// and canonical body all agree — the content-address contract of
/// `redeval-server`'s result cache (DESIGN.md §9).
///
/// # Examples
///
/// ```
/// use redeval::output::{cache_key_bytes, Json};
/// let key = cache_key_bytes("eval", &Json::Null, "{\"a\": 1}");
/// assert_eq!(
///     String::from_utf8(key).unwrap(),
///     "{\"kind\": \"eval\", \"params\": null, \"body\": {\"a\": 1}}"
/// );
/// ```
pub fn cache_key_bytes(kind: &str, params: &Json, canonical_body: &str) -> Vec<u8> {
    format!(
        "{{\"kind\": \"{}\", \"params\": {}, \"body\": {}}}",
        json_escape(kind),
        params.to_compact(),
        canonical_body
    )
    .into_bytes()
}

/// Quotes a CSV field when needed (contains comma, quote, CR or LF),
/// doubling internal quotes; returns other fields unchanged.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One scalar cell of a [`Table`] or key/value block.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / not applicable.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (counts, indices).
    Int(i64),
    /// Float, serialized canonically (see [`fmt_f64`]).
    Num(f64),
    /// String.
    Str(String),
}

impl Value {
    /// JSON fragment for this value (no surrounding whitespace).
    fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) if x.is_finite() => fmt_f64(*x),
            Value::Num(x) => format!("\"{}\"", fmt_f64(*x)),
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }

    /// CSV field for this value (already quoted where required).
    fn to_csv(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) => fmt_f64(*x),
            Value::Str(s) => csv_field(s),
        }
    }

    /// Text-renderer form (floats shortened for readability).
    fn to_text(&self) -> String {
        match self {
            Value::Null => "-".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) => fmt_f64_text(*x),
            Value::Str(s) => s.clone(),
        }
    }

    /// Whether the text renderer right-aligns this value.
    fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Num(_))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).expect("count fits in i64"))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A named, rectangular table: the workhorse of every report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Machine-oriented table name (unique within a report).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given name and column headers.
    pub fn new<C: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = C>,
    ) -> Self {
        Table {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the column count — a
    /// report-construction bug, not an input condition.
    pub fn add_row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table `{}`: row arity {} != {} columns",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// CSV rendering: a header row then one line per row, `\n`-terminated.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| csv_field(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(Value::to_csv).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Aligned-text rendering: numeric columns right-aligned, the rest
    /// left-aligned, two spaces between columns.
    pub fn to_text(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_text).collect())
            .collect();
        let numeric: Vec<bool> = (0..self.columns.len())
            .map(|c| {
                !self.rows.is_empty()
                    && self
                        .rows
                        .iter()
                        .all(|r| r[c].is_numeric() || r[c] == Value::Null)
            })
            .collect();
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| {
                cells
                    .iter()
                    .map(|r| r[c].chars().count())
                    .chain(std::iter::once(self.columns[c].chars().count()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let render = |out: &mut String, fields: &[String]| {
            let mut line = String::new();
            for (c, f) in fields.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = " ".repeat(widths[c].saturating_sub(f.chars().count()));
                if numeric[c] {
                    line.push_str(&pad);
                    line.push_str(f);
                } else {
                    line.push_str(f);
                    if c + 1 < fields.len() {
                        line.push_str(&pad);
                    }
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        };
        render(&mut out, &self.columns);
        for row in &cells {
            render(&mut out, row);
        }
        out
    }

    /// Markdown rendering: a pipe table with numeric columns
    /// right-aligned (`---:`).
    pub fn to_markdown(&self) -> String {
        let numeric: Vec<bool> = (0..self.columns.len())
            .map(|c| {
                !self.rows.is_empty()
                    && self
                        .rows
                        .iter()
                        .all(|r| r[c].is_numeric() || r[c] == Value::Null)
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            numeric
                .iter()
                .map(|&n| if n { "---:" } else { "---" })
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter()
                    .map(Value::to_text)
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        out
    }
}

/// A named numeric series over a labelled index — sweep results, radar
/// axes, transients.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Machine-oriented series name (unique within a report).
    pub name: String,
    /// Index labels, one per value.
    pub index: Vec<String>,
    /// The values.
    pub values: Vec<f64>,
}

impl Series {
    /// A series from parallel index/value lists.
    ///
    /// # Panics
    ///
    /// Panics when the lists disagree in length.
    pub fn new(name: impl Into<String>, index: Vec<String>, values: Vec<f64>) -> Self {
        assert_eq!(index.len(), values.len(), "series index/value mismatch");
        Series {
            name: name.into(),
            index,
            values,
        }
    }
}

/// One element of a [`Report`], kept in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Free-text commentary (one paragraph).
    Note(String),
    /// Ordered key/value facts.
    Keys(Vec<(String, Value)>),
    /// A table.
    Table(Table),
    /// A numeric series.
    Series(Series),
}

/// A complete reproduction artifact: title, status flag and an ordered
/// list of [`Item`]s, serializable as JSON, CSV or text.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Machine name — the CLI subcommand and golden-file stem.
    pub name: String,
    /// Human title.
    pub title: String,
    /// Whether every embedded consistency check passed (e.g. the region
    /// analyses matching the paper). Serialized, so a regression flips
    /// the golden even if no number is printed.
    pub ok: bool,
    /// The content, in insertion order.
    pub items: Vec<Item>,
}

impl Report {
    /// An empty, `ok` report.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            ok: true,
            items: Vec::new(),
        }
    }

    /// Appends a note paragraph.
    pub fn note(&mut self, text: impl Into<String>) {
        self.items.push(Item::Note(text.into()));
    }

    /// Appends an ordered key/value block.
    pub fn keys<K: Into<String>, V: Into<Value>>(
        &mut self,
        entries: impl IntoIterator<Item = (K, V)>,
    ) {
        self.items.push(Item::Keys(
            entries
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        ));
    }

    /// Appends a table.
    pub fn table(&mut self, table: Table) {
        self.items.push(Item::Table(table));
    }

    /// Appends a series.
    pub fn series(&mut self, series: Series) {
        self.items.push(Item::Series(series));
    }

    /// Records a consistency-check outcome: the report stays `ok` only
    /// while every check passes.
    pub fn check(&mut self, passed: bool) {
        self.ok &= passed;
    }

    /// Canonical JSON: two-space indent, one table row per line, keys in
    /// declaration order. Byte-identical across runs and thread counts
    /// for deterministic report builders (the golden-corpus contract).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(SCHEMA));
        let _ = writeln!(out, "  \"report\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(out, "  \"ok\": {},", self.ok);
        out.push_str("  \"items\": [");
        for (i, item) in self.items.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            match item {
                Item::Note(text) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"note\", \"text\": \"{}\"}}",
                        json_escape(text)
                    );
                }
                Item::Keys(entries) => {
                    out.push_str("    {\"kind\": \"keys\", \"entries\": {");
                    for (j, (k, v)) in entries.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{}\": {}", json_escape(k), v.to_json());
                    }
                    out.push_str("}}");
                }
                Item::Table(t) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"table\", \"name\": \"{}\", \"columns\": [{}], \"rows\": [",
                        json_escape(&t.name),
                        t.columns
                            .iter()
                            .map(|c| format!("\"{}\"", json_escape(c)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    for (j, row) in t.rows.iter().enumerate() {
                        out.push_str(if j == 0 { "\n" } else { ",\n" });
                        let _ = write!(
                            out,
                            "      [{}]",
                            row.iter()
                                .map(Value::to_json)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    if t.rows.is_empty() {
                        out.push_str("]}");
                    } else {
                        out.push_str("\n    ]}");
                    }
                }
                Item::Series(s) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"series\", \"name\": \"{}\", \"index\": [{}], \"values\": [{}]}}",
                        json_escape(&s.name),
                        s.index
                            .iter()
                            .map(|l| format!("\"{}\"", json_escape(l)))
                            .collect::<Vec<_>>()
                            .join(", "),
                        s.values
                            .iter()
                            .map(|&v| Value::Num(v).to_json())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        if self.items.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// CSV rendering: data items (tables and series) as CSV blocks
    /// separated by blank lines, each preceded by `# <kind>,<name>`
    /// comment lines; notes and keys become `#`-prefixed comment rows so
    /// the data keeps full context.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {},{}", SCHEMA, csv_field(&self.name));
        let _ = writeln!(out, "# title,{}", csv_field(&self.title));
        let _ = writeln!(out, "# ok,{}", self.ok);
        for item in &self.items {
            match item {
                Item::Note(text) => {
                    let _ = writeln!(out, "# note,{}", csv_field(&text.replace('\n', " ")));
                }
                Item::Keys(entries) => {
                    for (k, v) in entries {
                        let _ = writeln!(out, "# key,{},{}", csv_field(k), v.to_csv());
                    }
                }
                Item::Table(t) => {
                    out.push('\n');
                    let _ = writeln!(out, "# table,{}", csv_field(&t.name));
                    out.push_str(&t.to_csv());
                }
                Item::Series(s) => {
                    out.push('\n');
                    let _ = writeln!(out, "# series,{}", csv_field(&s.name));
                    out.push_str("index,value\n");
                    for (l, v) in s.index.iter().zip(&s.values) {
                        let _ = writeln!(out, "{},{}", csv_field(l), fmt_f64(*v));
                    }
                }
            }
        }
        out
    }

    /// Human-oriented text rendering (what the report binaries print).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} ====", self.title);
        for item in &self.items {
            out.push('\n');
            match item {
                Item::Note(text) => {
                    let _ = writeln!(out, "{text}");
                }
                Item::Keys(entries) => {
                    let width = entries
                        .iter()
                        .map(|(k, _)| k.chars().count())
                        .max()
                        .unwrap_or(0);
                    for (k, v) in entries {
                        let _ = writeln!(out, "{k:<width$}  {}", v.to_text());
                    }
                }
                Item::Table(t) => {
                    let _ = writeln!(out, "-- {} --", t.name);
                    out.push_str(&t.to_text());
                }
                Item::Series(s) => {
                    let _ = writeln!(out, "-- {} --", s.name);
                    let width = s.index.iter().map(|l| l.chars().count()).max().unwrap_or(0);
                    for (l, v) in s.index.iter().zip(&s.values) {
                        let _ = writeln!(out, "{l:<width$}  {}", fmt_f64_text(*v));
                    }
                }
            }
        }
        if !self.ok {
            out.push('\n');
            out.push_str("CONSISTENCY CHECK FAILED — see the report above.\n");
        }
        out
    }
}

/// A parsed JSON value — the read-side counterpart of the canonical
/// serializers above.
///
/// Objects keep their keys in **document order** (no hash maps), so a
/// value parsed from canonical output and re-serialized canonically is
/// byte-identical; this is what makes `parse ∘ serialize` round-trips
/// testable at the byte level. Numbers are `f64` (JSON's only numeric
/// type); [`parse_json`] uses Rust's grisu-exact `str::parse::<f64>`,
/// which is the exact inverse of [`fmt_f64`]'s shortest-round-trip form,
/// so no bits are lost in either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys in document order, duplicates rejected at parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks a key up in an object (first match; duplicates cannot occur
    /// in parsed values).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact (single-line) canonical rendering: keys in stored order,
    /// floats via [`fmt_f64`], strings via [`json_escape`]. Non-finite
    /// numbers become the usual policy strings, mirroring the report
    /// serializer.
    pub fn to_compact(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(x) if x.is_finite() => fmt_f64(*x),
            Json::Num(x) => format!("\"{}\"", fmt_f64(*x)),
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::to_compact).collect();
                format!("[{}]", inner.join(", "))
            }
            Json::Obj(entries) => {
                let inner: Vec<String> = entries
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v.to_compact()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

/// A JSON syntax error with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`parse_json`] accepts. Recursive descent
/// uses the call stack, so hostile input (`[[[[…`) must hit a parse
/// error long before it can hit a stack overflow; 128 levels is far
/// beyond any legitimate report or scenario document.
pub const JSON_MAX_DEPTH: usize = 128;

/// Parses a complete JSON document into a [`Json`] value.
///
/// Strict RFC-8259 syntax plus three deliberate properties:
///
/// * object keys stay in document order and **duplicate keys are an
///   error** (silent last-wins would make round-trip equality lie);
/// * exactly one top-level value; trailing non-whitespace is an error;
/// * container nesting is capped at [`JSON_MAX_DEPTH`], so adversarial
///   input fails with a [`JsonError`] instead of exhausting the stack.
///
/// # Errors
///
/// Returns a [`JsonError`] with 1-based line/column on malformed input.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, capped at [`JSON_MAX_DEPTH`].
    depth: usize,
}

impl JsonParser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else if (b & 0xC0) != 0x80 {
                // Count characters, not bytes: UTF-8 continuation bytes
                // are zero-width, so the column matches what an editor
                // shows even after non-ASCII text (titles with dashes,
                // accented names, …).
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Runs a container parser one nesting level deeper, erroring out at
    /// [`JSON_MAX_DEPTH`] before the call stack can overflow.
    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= JSON_MAX_DEPTH {
            return Err(self.err(format!(
                "containers nested deeper than {JSON_MAX_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{}`", snippet(&key))));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so always valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end]).expect("valid UTF-8"),
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low surrogate
    /// pair when needed); leaves `pos` after the last consumed digit + 1.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            // Exactly 4HEXDIG (RFC 8259): check byte-wise rather than via
            // from_str_radix, which would also accept a leading `+`.
            let mut v: u32 = 0;
            for &b in &p.bytes[p.pos..end] {
                let digit = (b as char)
                    .to_digit(16)
                    .ok_or_else(|| p.err("invalid \\u escape"))?;
                v = (v << 4) | digit;
            }
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
            } else {
                return Err(self.err("unpaired high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        // `str::parse::<f64>` saturates overflowing literals (1e999) to
        // infinity instead of failing; reject those explicitly so the
        // value model stays finite-canonical (non-finite numbers only
        // ever *serialize*, as policy strings).
        let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range for a finite f64"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting_is_canonical() {
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(-0.0), "-0");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "Infinity");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
        // Shortest round-trip: parsing the output recovers the bits.
        for x in [0.99707, 1.0 / 3.0, 6.02e23, 5e-324] {
            assert_eq!(fmt_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("é ∑"), "é ∑"); // non-ASCII passes through
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn non_finite_floats_serialize_as_strings_in_json() {
        let mut t = Table::new("t", ["x"]);
        t.add_row(vec![Value::from(f64::NAN)]);
        t.add_row(vec![Value::from(f64::INFINITY)]);
        let mut r = Report::new("n", "non-finite");
        r.table(t);
        let json = r.to_json();
        assert!(json.contains("[\"NaN\"]"));
        assert!(json.contains("[\"Infinity\"]"));
        // The output stays machine-parseable: balanced quotes, no bare NaN.
        assert!(!json.contains(": NaN"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", ["a", "b"]);
        t.add_row(vec![Value::from(1)]);
    }

    #[test]
    fn json_shape_and_key_order() {
        let mut r = Report::new("demo", "Demo");
        r.keys([("threads", Value::from(2)), ("label", Value::from("x,y"))]);
        let mut t = Table::new("data", ["design", "coa"]);
        t.add_row(vec![Value::from("a"), Value::from(0.5)]);
        r.table(t);
        r.series(Series::new("s", vec!["p".into()], vec![1.5]));
        r.note("done");
        let json = r.to_json();
        let schema_at = json.find("\"schema\"").unwrap();
        let report_at = json.find("\"report\"").unwrap();
        let items_at = json.find("\"items\"").unwrap();
        assert!(schema_at < report_at && report_at < items_at);
        assert!(json.contains("\"entries\": {\"threads\": 2, \"label\": \"x,y\"}"));
        assert!(json.contains("\"columns\": [\"design\", \"coa\"]"));
        assert!(json.contains("[\"a\", 0.5]"));
        assert!(json.contains("\"values\": [1.5]"));
        assert!(json.contains("{\"kind\": \"note\", \"text\": \"done\"}"));
        // Serialization is a pure function of the value.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn csv_blocks_carry_tables_and_series() {
        let mut r = Report::new("demo", "Demo, with comma");
        let mut t = Table::new("data", ["design", "coa"]);
        t.add_row(vec![Value::from("a,b"), Value::from(0.25)]);
        r.table(t);
        r.series(Series::new("s", vec!["p0".into()], vec![2.0]));
        let csv = r.to_csv();
        assert!(csv.starts_with(&format!("# {SCHEMA},demo\n")));
        assert!(csv.contains("# title,\"Demo, with comma\""));
        assert!(csv.contains("# table,data\ndesign,coa\n\"a,b\",0.25\n"));
        assert!(csv.contains("# series,s\nindex,value\np0,2\n"));
    }

    #[test]
    fn text_aligns_numeric_columns_right() {
        let mut t = Table::new("t", ["name", "n"]);
        t.add_row(vec![Value::from("a"), Value::from(7)]);
        t.add_row(vec![Value::from("bbbb"), Value::from(123)]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "a       7");
        assert_eq!(lines[2], "bbbb  123");
    }

    #[test]
    fn markdown_marks_numeric_columns() {
        let mut t = Table::new("t", ["name", "n"]);
        t.add_row(vec![Value::from("a"), Value::from(1.25)]);
        let md = t.to_markdown();
        assert!(md.contains("| name | n |"));
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| a | 1.25 |"));
    }

    #[test]
    fn failed_check_flips_ok_and_text_flags_it() {
        let mut r = Report::new("r", "R");
        r.check(true);
        assert!(r.ok);
        r.check(false);
        r.check(true); // a later pass cannot un-fail the report
        assert!(!r.ok);
        assert!(r.to_json().contains("\"ok\": false"));
        assert!(r.to_text().contains("CONSISTENCY CHECK FAILED"));
    }

    #[test]
    fn empty_report_serializes() {
        let r = Report::new("e", "Empty");
        assert!(r.to_json().ends_with("\"items\": []\n}\n"));
        assert_eq!(r.to_text(), "==== Empty ====\n");
    }

    #[test]
    fn parser_accepts_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(parse_json("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse_json("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(
            parse_json("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(vec![]),
            ])
        );
        let obj = parse_json("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            obj.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(obj.get("c").is_none());
    }

    #[test]
    fn parser_decodes_escapes_and_unicode() {
        assert_eq!(
            parse_json(r#""a\"b\\c\n\tA""#).unwrap(),
            Json::Str("a\"b\\c\n\tA".into())
        );
        // Surrogate pair (😀) and raw non-ASCII pass through.
        assert_eq!(parse_json(r#""😀 é""#).unwrap(), Json::Str("😀 é".into()));
        assert!(parse_json(r#""\ud83d""#).is_err()); // unpaired high
        assert!(parse_json(r#""\udc00""#).is_err()); // unpaired low
        assert!(parse_json("\"a\nb\"").is_err()); // raw control char
                                                  // Exactly 4HEXDIG: from_str_radix-style signs are not hex digits.
        assert!(parse_json(r#""\u+041""#).is_err());
        assert!(parse_json(r#""\u 041""#).is_err());
        assert!(parse_json(r#""\ud83d\u+e00""#).is_err()); // low half too
        assert_eq!(parse_json(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parser_rejects_malformed_documents_with_positions() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "--1",
            "[1] extra",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        let e = parse_json("{\n  \"a\": ?\n}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn parser_preserves_object_key_order() {
        let obj = parse_json("{\"z\": 1, \"a\": 2, \"m\": 3}").unwrap();
        let keys: Vec<&str> = obj
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parser_bounds_nesting_depth_instead_of_overflowing_the_stack() {
        // Hostile nesting must produce a JsonError, never a stack
        // overflow (which aborts the whole process).
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(200_000), "]".repeat(200_000));
        let e = parse_json(&too_deep).unwrap_err();
        assert!(e.message.contains("nested deeper"), "{e}");
        // Mixed containers count the same.
        let mixed = "{\"a\": ".repeat(JSON_MAX_DEPTH + 1);
        assert!(parse_json(&mixed).unwrap_err().message.contains("nested"));
        // Depth resets between siblings: wide is fine.
        let wide = format!("[{}1]", "[1], ".repeat(10_000));
        assert!(parse_json(&wide).is_ok());
    }

    #[test]
    fn parser_rejects_overflowing_number_literals() {
        // `str::parse::<f64>` saturates 1e999 to infinity; the value
        // model is finite-canonical, so that must be a parse error, not
        // a silent Json::Num(inf).
        for bad in ["1e999", "-1e999", "123456789e999999"] {
            let e = parse_json(bad).unwrap_err();
            assert!(e.message.contains("out of range"), "{bad}: {e}");
        }
        // Subnormal underflow to zero is fine (still finite).
        assert_eq!(parse_json("1e-999").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn parser_error_columns_count_characters_not_bytes() {
        // 'é' is two bytes but one column; the reported position must
        // match what an editor shows.
        let e = parse_json("{\"é\": ?}").unwrap_err();
        assert_eq!((e.line, e.col), (1, 7));
        // Same shape with an ASCII key lands on the same column.
        let a = parse_json("{\"e\": ?}").unwrap_err();
        assert_eq!(a.col, e.col);
    }

    #[test]
    fn parser_numbers_are_bit_exact_inverse_of_fmt_f64() {
        for x in [0.99707, 1.0 / 3.0, 6.02e23, 5e-324, -0.0, 720.0] {
            let parsed = parse_json(&fmt_f64(x)).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parser_round_trips_report_json() {
        // The parser must accept everything the canonical serializer
        // emits, and compact re-serialization must round-trip again.
        let mut r = Report::new("demo", "Demo \"quoted\", with comma");
        r.keys([("threads", Value::from(2)), ("label", Value::from("x,y"))]);
        let mut t = Table::new("data", ["design", "coa"]);
        t.add_row(vec![Value::from("a"), Value::from(0.99707)]);
        t.add_row(vec![Value::Null, Value::from(f64::NAN)]);
        r.table(t);
        r.series(Series::new("s", vec!["p".into()], vec![1.5]));
        let parsed = parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed.get("report").and_then(Json::as_str), Some("demo"));
        let again = parse_json(&parsed.to_compact()).unwrap();
        assert_eq!(parsed, again);
    }

    #[test]
    fn snippet_caps_escapes_and_passes_short_strings_through() {
        assert_eq!(snippet(""), "");
        assert_eq!(snippet("tiers[2].count"), "tiers[2].count");
        assert_eq!(snippet("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        // Exactly SNIPPET_MAX chars: kept whole, no ellipsis.
        let exact = "y".repeat(SNIPPET_MAX);
        assert_eq!(snippet(&exact), exact);
        // One char over: capped with a visible cut marker.
        let over = "y".repeat(SNIPPET_MAX + 1);
        assert_eq!(snippet(&over), format!("{exact}…"));
        // A hostile megabyte collapses to a bounded message fragment.
        let huge = "Z".repeat(1 << 20);
        assert!(snippet(&huge).chars().count() <= SNIPPET_MAX + 1);
        // Character-based, not byte-based: multi-byte input never splits.
        let accents = "é".repeat(SNIPPET_MAX + 5);
        assert_eq!(snippet(&accents), format!("{}…", "é".repeat(SNIPPET_MAX)));
    }

    #[test]
    fn duplicate_key_errors_cap_the_echoed_key() {
        let key = "k".repeat(5000);
        let doc = format!("{{\"{key}\": 1, \"{key}\": 2}}");
        let e = parse_json(&doc).unwrap_err();
        assert!(e.message.contains("duplicate key"));
        assert!(e.message.len() < 200, "echoed {} bytes", e.message.len());
        assert!(e.message.contains('…'));
    }

    #[test]
    fn cache_key_bytes_separate_kind_params_and_body() {
        let params = Json::Obj(vec![("max_redundancy".into(), Json::Num(3.0))]);
        let a = cache_key_bytes("sweep", &params, "{\"x\": 1}");
        let b = cache_key_bytes("eval", &params, "{\"x\": 1}");
        let c = cache_key_bytes("sweep", &Json::Null, "{\"x\": 1}");
        let d = cache_key_bytes("sweep", &params, "{\"x\": 2}");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Same inputs, same bytes — the function is pure.
        assert_eq!(a, cache_key_bytes("sweep", &params, "{\"x\": 1}"));
    }

    #[test]
    fn compact_rendering_is_canonical() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("a".into(), Json::Str("x\"y".into())),
        ]);
        assert_eq!(v.to_compact(), "{\"b\": [1, null], \"a\": \"x\\\"y\"}");
    }
}
