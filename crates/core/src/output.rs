//! Structured report output: a typed value model with deterministic,
//! dependency-free serializers.
//!
//! Every reproduction artifact (paper tables, figures, sweeps, region
//! checks) is built as a [`Report`] — an ordered list of notes, key/value
//! blocks, [`Table`]s and [`Series`] — and rendered through one of four
//! serializers: canonical JSON ([`Report::to_json`]), RFC-4180-style CSV
//! ([`Report::to_csv`]), aligned text ([`Report::to_text`]) and markdown
//! tables ([`Table::to_markdown`]). The JSON form is the regression
//! currency: CI replays every report and byte-compares it against the
//! committed corpus under `tests/golden/`.
//!
//! # Determinism guarantees (DESIGN.md §6)
//!
//! * **Stable order** — objects serialize their keys in declaration
//!   order, items in insertion order; nothing is hash-ordered.
//! * **Canonical floats** — finite values use Rust's shortest
//!   round-trip `Display` form ([`fmt_f64`]), which is
//!   platform-independent and loses no bits; a report differs only when
//!   a computed number differs.
//! * **Non-finite policy** — JSON has no NaN/Infinity literals, so
//!   non-finite floats serialize as the JSON *strings* `"NaN"`,
//!   `"Infinity"` and `"-Infinity"`; CSV and text use the same spellings
//!   unquoted.
//! * **Escaping** — JSON strings escape `"`, `\` and all control
//!   characters (`\n`/`\r`/`\t` short forms, `\u00XX` otherwise); CSV
//!   fields containing a comma, quote or newline are quoted with internal
//!   quotes doubled.
//!
//! # Examples
//!
//! ```
//! use redeval::output::{Report, Table, Value};
//!
//! let mut table = Table::new("coa", ["design", "coa"]);
//! table.add_row(vec![Value::from("1+2+2+1"), Value::from(0.99707)]);
//! let mut report = Report::new("demo", "Demo report");
//! report.table(table);
//! assert!(report.to_json().contains("\"rows\""));
//! assert!(report.to_csv().contains("1+2+2+1,0.99707"));
//! ```

use std::fmt::Write as _;

/// Identifies the schema of serialized reports (bumped on breaking
/// changes to the JSON/CSV shape).
pub const SCHEMA: &str = "redeval-report/1";

/// Formats a float canonically: shortest round-trip representation for
/// finite values (Rust `Display`), `NaN` / `Infinity` / `-Infinity`
/// otherwise. This is the only float-to-string path in the serializers.
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "Infinity".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else {
        format!("{x}")
    }
}

/// Human-oriented float formatting for the text renderer: at most six
/// decimal places, trailing zeros trimmed. (JSON and CSV keep full
/// precision via [`fmt_f64`].)
fn fmt_f64_text(x: f64) -> String {
    if !x.is_finite() {
        return fmt_f64(x);
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Escapes a string for inclusion inside a JSON string literal (without
/// the surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a CSV field when needed (contains comma, quote, CR or LF),
/// doubling internal quotes; returns other fields unchanged.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One scalar cell of a [`Table`] or key/value block.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / not applicable.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (counts, indices).
    Int(i64),
    /// Float, serialized canonically (see [`fmt_f64`]).
    Num(f64),
    /// String.
    Str(String),
}

impl Value {
    /// JSON fragment for this value (no surrounding whitespace).
    fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) if x.is_finite() => fmt_f64(*x),
            Value::Num(x) => format!("\"{}\"", fmt_f64(*x)),
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }

    /// CSV field for this value (already quoted where required).
    fn to_csv(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) => fmt_f64(*x),
            Value::Str(s) => csv_field(s),
        }
    }

    /// Text-renderer form (floats shortened for readability).
    fn to_text(&self) -> String {
        match self {
            Value::Null => "-".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Num(x) => fmt_f64_text(*x),
            Value::Str(s) => s.clone(),
        }
    }

    /// Whether the text renderer right-aligns this value.
    fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Num(_))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).expect("count fits in i64"))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A named, rectangular table: the workhorse of every report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Machine-oriented table name (unique within a report).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given name and column headers.
    pub fn new<C: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = C>,
    ) -> Self {
        Table {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the column count — a
    /// report-construction bug, not an input condition.
    pub fn add_row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table `{}`: row arity {} != {} columns",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// CSV rendering: a header row then one line per row, `\n`-terminated.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| csv_field(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(Value::to_csv).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Aligned-text rendering: numeric columns right-aligned, the rest
    /// left-aligned, two spaces between columns.
    pub fn to_text(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_text).collect())
            .collect();
        let numeric: Vec<bool> = (0..self.columns.len())
            .map(|c| {
                !self.rows.is_empty()
                    && self
                        .rows
                        .iter()
                        .all(|r| r[c].is_numeric() || r[c] == Value::Null)
            })
            .collect();
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| {
                cells
                    .iter()
                    .map(|r| r[c].chars().count())
                    .chain(std::iter::once(self.columns[c].chars().count()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let render = |out: &mut String, fields: &[String]| {
            let mut line = String::new();
            for (c, f) in fields.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = " ".repeat(widths[c].saturating_sub(f.chars().count()));
                if numeric[c] {
                    line.push_str(&pad);
                    line.push_str(f);
                } else {
                    line.push_str(f);
                    if c + 1 < fields.len() {
                        line.push_str(&pad);
                    }
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        };
        render(&mut out, &self.columns);
        for row in &cells {
            render(&mut out, row);
        }
        out
    }

    /// Markdown rendering: a pipe table with numeric columns
    /// right-aligned (`---:`).
    pub fn to_markdown(&self) -> String {
        let numeric: Vec<bool> = (0..self.columns.len())
            .map(|c| {
                !self.rows.is_empty()
                    && self
                        .rows
                        .iter()
                        .all(|r| r[c].is_numeric() || r[c] == Value::Null)
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            numeric
                .iter()
                .map(|&n| if n { "---:" } else { "---" })
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter()
                    .map(Value::to_text)
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        out
    }
}

/// A named numeric series over a labelled index — sweep results, radar
/// axes, transients.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Machine-oriented series name (unique within a report).
    pub name: String,
    /// Index labels, one per value.
    pub index: Vec<String>,
    /// The values.
    pub values: Vec<f64>,
}

impl Series {
    /// A series from parallel index/value lists.
    ///
    /// # Panics
    ///
    /// Panics when the lists disagree in length.
    pub fn new(name: impl Into<String>, index: Vec<String>, values: Vec<f64>) -> Self {
        assert_eq!(index.len(), values.len(), "series index/value mismatch");
        Series {
            name: name.into(),
            index,
            values,
        }
    }
}

/// One element of a [`Report`], kept in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Free-text commentary (one paragraph).
    Note(String),
    /// Ordered key/value facts.
    Keys(Vec<(String, Value)>),
    /// A table.
    Table(Table),
    /// A numeric series.
    Series(Series),
}

/// A complete reproduction artifact: title, status flag and an ordered
/// list of [`Item`]s, serializable as JSON, CSV or text.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Machine name — the CLI subcommand and golden-file stem.
    pub name: String,
    /// Human title.
    pub title: String,
    /// Whether every embedded consistency check passed (e.g. the region
    /// analyses matching the paper). Serialized, so a regression flips
    /// the golden even if no number is printed.
    pub ok: bool,
    /// The content, in insertion order.
    pub items: Vec<Item>,
}

impl Report {
    /// An empty, `ok` report.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            ok: true,
            items: Vec::new(),
        }
    }

    /// Appends a note paragraph.
    pub fn note(&mut self, text: impl Into<String>) {
        self.items.push(Item::Note(text.into()));
    }

    /// Appends an ordered key/value block.
    pub fn keys<K: Into<String>, V: Into<Value>>(
        &mut self,
        entries: impl IntoIterator<Item = (K, V)>,
    ) {
        self.items.push(Item::Keys(
            entries
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        ));
    }

    /// Appends a table.
    pub fn table(&mut self, table: Table) {
        self.items.push(Item::Table(table));
    }

    /// Appends a series.
    pub fn series(&mut self, series: Series) {
        self.items.push(Item::Series(series));
    }

    /// Records a consistency-check outcome: the report stays `ok` only
    /// while every check passes.
    pub fn check(&mut self, passed: bool) {
        self.ok &= passed;
    }

    /// Canonical JSON: two-space indent, one table row per line, keys in
    /// declaration order. Byte-identical across runs and thread counts
    /// for deterministic report builders (the golden-corpus contract).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(SCHEMA));
        let _ = writeln!(out, "  \"report\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(out, "  \"ok\": {},", self.ok);
        out.push_str("  \"items\": [");
        for (i, item) in self.items.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            match item {
                Item::Note(text) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"note\", \"text\": \"{}\"}}",
                        json_escape(text)
                    );
                }
                Item::Keys(entries) => {
                    out.push_str("    {\"kind\": \"keys\", \"entries\": {");
                    for (j, (k, v)) in entries.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{}\": {}", json_escape(k), v.to_json());
                    }
                    out.push_str("}}");
                }
                Item::Table(t) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"table\", \"name\": \"{}\", \"columns\": [{}], \"rows\": [",
                        json_escape(&t.name),
                        t.columns
                            .iter()
                            .map(|c| format!("\"{}\"", json_escape(c)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    for (j, row) in t.rows.iter().enumerate() {
                        out.push_str(if j == 0 { "\n" } else { ",\n" });
                        let _ = write!(
                            out,
                            "      [{}]",
                            row.iter()
                                .map(Value::to_json)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    if t.rows.is_empty() {
                        out.push_str("]}");
                    } else {
                        out.push_str("\n    ]}");
                    }
                }
                Item::Series(s) => {
                    let _ = write!(
                        out,
                        "    {{\"kind\": \"series\", \"name\": \"{}\", \"index\": [{}], \"values\": [{}]}}",
                        json_escape(&s.name),
                        s.index
                            .iter()
                            .map(|l| format!("\"{}\"", json_escape(l)))
                            .collect::<Vec<_>>()
                            .join(", "),
                        s.values
                            .iter()
                            .map(|&v| Value::Num(v).to_json())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        if self.items.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// CSV rendering: data items (tables and series) as CSV blocks
    /// separated by blank lines, each preceded by `# <kind>,<name>`
    /// comment lines; notes and keys become `#`-prefixed comment rows so
    /// the data keeps full context.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {},{}", SCHEMA, csv_field(&self.name));
        let _ = writeln!(out, "# title,{}", csv_field(&self.title));
        let _ = writeln!(out, "# ok,{}", self.ok);
        for item in &self.items {
            match item {
                Item::Note(text) => {
                    let _ = writeln!(out, "# note,{}", csv_field(&text.replace('\n', " ")));
                }
                Item::Keys(entries) => {
                    for (k, v) in entries {
                        let _ = writeln!(out, "# key,{},{}", csv_field(k), v.to_csv());
                    }
                }
                Item::Table(t) => {
                    out.push('\n');
                    let _ = writeln!(out, "# table,{}", csv_field(&t.name));
                    out.push_str(&t.to_csv());
                }
                Item::Series(s) => {
                    out.push('\n');
                    let _ = writeln!(out, "# series,{}", csv_field(&s.name));
                    out.push_str("index,value\n");
                    for (l, v) in s.index.iter().zip(&s.values) {
                        let _ = writeln!(out, "{},{}", csv_field(l), fmt_f64(*v));
                    }
                }
            }
        }
        out
    }

    /// Human-oriented text rendering (what the report binaries print).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} ====", self.title);
        for item in &self.items {
            out.push('\n');
            match item {
                Item::Note(text) => {
                    let _ = writeln!(out, "{text}");
                }
                Item::Keys(entries) => {
                    let width = entries
                        .iter()
                        .map(|(k, _)| k.chars().count())
                        .max()
                        .unwrap_or(0);
                    for (k, v) in entries {
                        let _ = writeln!(out, "{k:<width$}  {}", v.to_text());
                    }
                }
                Item::Table(t) => {
                    let _ = writeln!(out, "-- {} --", t.name);
                    out.push_str(&t.to_text());
                }
                Item::Series(s) => {
                    let _ = writeln!(out, "-- {} --", s.name);
                    let width = s.index.iter().map(|l| l.chars().count()).max().unwrap_or(0);
                    for (l, v) in s.index.iter().zip(&s.values) {
                        let _ = writeln!(out, "{l:<width$}  {}", fmt_f64_text(*v));
                    }
                }
            }
        }
        if !self.ok {
            out.push('\n');
            out.push_str("CONSISTENCY CHECK FAILED — see the report above.\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting_is_canonical() {
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(-0.0), "-0");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "Infinity");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Infinity");
        // Shortest round-trip: parsing the output recovers the bits.
        for x in [0.99707, 1.0 / 3.0, 6.02e23, 5e-324] {
            assert_eq!(fmt_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("é ∑"), "é ∑"); // non-ASCII passes through
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn non_finite_floats_serialize_as_strings_in_json() {
        let mut t = Table::new("t", ["x"]);
        t.add_row(vec![Value::from(f64::NAN)]);
        t.add_row(vec![Value::from(f64::INFINITY)]);
        let mut r = Report::new("n", "non-finite");
        r.table(t);
        let json = r.to_json();
        assert!(json.contains("[\"NaN\"]"));
        assert!(json.contains("[\"Infinity\"]"));
        // The output stays machine-parseable: balanced quotes, no bare NaN.
        assert!(!json.contains(": NaN"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", ["a", "b"]);
        t.add_row(vec![Value::from(1)]);
    }

    #[test]
    fn json_shape_and_key_order() {
        let mut r = Report::new("demo", "Demo");
        r.keys([("threads", Value::from(2)), ("label", Value::from("x,y"))]);
        let mut t = Table::new("data", ["design", "coa"]);
        t.add_row(vec![Value::from("a"), Value::from(0.5)]);
        r.table(t);
        r.series(Series::new("s", vec!["p".into()], vec![1.5]));
        r.note("done");
        let json = r.to_json();
        let schema_at = json.find("\"schema\"").unwrap();
        let report_at = json.find("\"report\"").unwrap();
        let items_at = json.find("\"items\"").unwrap();
        assert!(schema_at < report_at && report_at < items_at);
        assert!(json.contains("\"entries\": {\"threads\": 2, \"label\": \"x,y\"}"));
        assert!(json.contains("\"columns\": [\"design\", \"coa\"]"));
        assert!(json.contains("[\"a\", 0.5]"));
        assert!(json.contains("\"values\": [1.5]"));
        assert!(json.contains("{\"kind\": \"note\", \"text\": \"done\"}"));
        // Serialization is a pure function of the value.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn csv_blocks_carry_tables_and_series() {
        let mut r = Report::new("demo", "Demo, with comma");
        let mut t = Table::new("data", ["design", "coa"]);
        t.add_row(vec![Value::from("a,b"), Value::from(0.25)]);
        r.table(t);
        r.series(Series::new("s", vec!["p0".into()], vec![2.0]));
        let csv = r.to_csv();
        assert!(csv.starts_with(&format!("# {SCHEMA},demo\n")));
        assert!(csv.contains("# title,\"Demo, with comma\""));
        assert!(csv.contains("# table,data\ndesign,coa\n\"a,b\",0.25\n"));
        assert!(csv.contains("# series,s\nindex,value\np0,2\n"));
    }

    #[test]
    fn text_aligns_numeric_columns_right() {
        let mut t = Table::new("t", ["name", "n"]);
        t.add_row(vec![Value::from("a"), Value::from(7)]);
        t.add_row(vec![Value::from("bbbb"), Value::from(123)]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "a       7");
        assert_eq!(lines[2], "bbbb  123");
    }

    #[test]
    fn markdown_marks_numeric_columns() {
        let mut t = Table::new("t", ["name", "n"]);
        t.add_row(vec![Value::from("a"), Value::from(1.25)]);
        let md = t.to_markdown();
        assert!(md.contains("| name | n |"));
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| a | 1.25 |"));
    }

    #[test]
    fn failed_check_flips_ok_and_text_flags_it() {
        let mut r = Report::new("r", "R");
        r.check(true);
        assert!(r.ok);
        r.check(false);
        r.check(true); // a later pass cannot un-fail the report
        assert!(!r.ok);
        assert!(r.to_json().contains("\"ok\": false"));
        assert!(r.to_text().contains("CONSISTENCY CHECK FAILED"));
    }

    #[test]
    fn empty_report_serializes() {
        let r = Report::new("e", "Empty");
        assert!(r.to_json().ends_with("\"items\": []\n}\n"));
        assert_eq!(r.to_text(), "==== Empty ====\n");
    }
}
