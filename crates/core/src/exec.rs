//! Batch execution layer: scenario grids evaluated on a scoped worker pool.
//!
//! The paper's headline results are *sweeps* — designs × patch policies ×
//! schedule parameters — and every such sweep reduces to the same shape:
//! a grid of [`Scenario`]s, each producing one [`DesignEvaluation`]. This
//! module provides that shape once, so the design space can grow to
//! thousands of scenarios without per-call-site `for` loops:
//!
//! * [`run_batch`] — the primitive: a deterministic parallel map over job
//!   indices on scoped [`std::thread`] workers (no external dependencies);
//! * [`AnalysisCache`] — a thread-safe, session-scoped cache of the
//!   per-tier lower-layer SRN solves, keyed by parameter content
//!   (count- and name-independent, so one solve serves every design —
//!   and every later request — sharing a tier's [`ServerParams`]
//!   numbers);
//! * [`Scenario`] / [`Experiment`] — one evaluation unit and an executable
//!   batch of them; the executor groups scenarios that share a spec and
//!   design so the HARM construction, before-patch metrics and
//!   availability solves are computed once per group instead of once per
//!   scenario;
//! * [`Sweep`] — the declarative grid builder: spec variants × designs ×
//!   patch policies, run in one call.
//!
//! # Determinism
//!
//! Results come back in grid order regardless of thread count, and every
//! scenario's numbers are bitwise-identical to a sequential
//! [`Scenario::evaluate`] call: workers only partition *which* scenarios
//! they compute, never how a scenario is computed, and the shared caches
//! store values that do not depend on evaluation order.
//!
//! # Examples
//!
//! Evaluate the paper's five designs under three patch policies on every
//! available core:
//!
//! ```
//! use redeval::case_study;
//! use redeval::exec::Sweep;
//! use redeval::PatchPolicy;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let evals = Sweep::new(case_study::network())
//!     .designs(case_study::five_designs())
//!     .policies(vec![
//!         PatchPolicy::None,
//!         PatchPolicy::CriticalOnly(8.0),
//!         PatchPolicy::All,
//!     ])
//!     .run()?;
//! assert_eq!(evals.len(), 15); // 5 designs × 3 policies, in grid order
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use redeval_avail::{Durations, ServerAnalysis, ServerParams};
use redeval_harm::MetricsConfig;
use redeval_srn::SrnError;

use crate::evaluation::{DesignEvaluation, PatchPolicy};
use crate::spec::{Design, NetworkSpec};
use crate::telemetry::{Counter, Telemetry};
use crate::EvalError;

/// The number of worker threads matching the machine's available
/// parallelism (at least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` independent jobs on up to `threads` scoped worker threads
/// and returns the results **in job order**.
///
/// Workers pull job indices from a shared atomic counter, so long and
/// short jobs balance automatically. With `threads <= 1` (or a single
/// job) everything runs inline on the caller's thread — the parallel and
/// sequential paths execute the exact same per-job code.
///
/// # Panics
///
/// Propagates panics from `job`.
///
/// # Examples
///
/// ```
/// let squares = redeval::exec::run_batch(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_batch<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        done.push((i, job(i)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, value) in bucket.drain(..) {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job index assigned exactly once"))
        .collect()
}

/// A queued unit of [`Pool`] work.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// What the pool workers share: the task queue and shutdown flag.
#[derive(Default)]
struct PoolShared {
    queue: Mutex<VecDeque<PoolTask>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// Per-batch bookkeeping for [`Pool::run_batch`]: the job counter, the
/// result slots and the helper-completion latch.
struct BatchState<T> {
    next: AtomicUsize,
    jobs: usize,
    slots: Mutex<Vec<Option<T>>>,
    finished_helpers: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T: Send> BatchState<T> {
    fn new(jobs: usize) -> Self {
        BatchState {
            next: AtomicUsize::new(0),
            jobs,
            slots: Mutex::new((0..jobs).map(|_| None).collect()),
            finished_helpers: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Claims and runs jobs until the counter is exhausted. A panicking
    /// job stops further claims and parks its payload for the caller.
    fn work(&self, job: &(dyn Fn(usize) -> T + Sync)) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                return;
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i))) {
                Ok(value) => self.slots.lock().expect("batch slots lock")[i] = Some(value),
                Err(payload) => {
                    *self.panic.lock().expect("batch panic lock") = Some(payload);
                    self.next.store(self.jobs, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    fn helper_finished(&self) {
        *self.finished_helpers.lock().expect("batch latch lock") += 1;
        self.done.notify_all();
    }

    /// Blocks until every helper task has checked in. While waiting, the
    /// caller drains the pool's task queue inline: with few workers (or a
    /// batch submitted from inside a pool job) a helper task might never
    /// be popped by anyone else, and running queued tasks here instead of
    /// sleeping makes that situation impossible to deadlock on.
    fn wait_for_helpers(&self, pool: &PoolShared, helpers: usize) {
        loop {
            {
                let finished = self.finished_helpers.lock().expect("batch latch lock");
                if *finished >= helpers {
                    return;
                }
            }
            let task = pool.queue.lock().expect("pool queue lock").pop_front();
            match task {
                Some(task) => task(),
                None => {
                    // Queue empty ⇒ every helper of this batch has been
                    // popped and is running; its completion will notify.
                    // Re-check under the lock so a check-in between the
                    // pop and this wait cannot be missed.
                    let finished = self.finished_helpers.lock().expect("batch latch lock");
                    if *finished >= helpers {
                        return;
                    }
                    drop(self.done.wait(finished).expect("batch latch wait"));
                }
            }
        }
    }
}

/// A reusable worker pool: threads spawned once, batches submitted many
/// times — the execution substrate of long-running processes such as
/// `redeval serve`, where per-request scoped-thread spawning would pay
/// thread startup on every evaluation.
///
/// [`Pool::run_batch`] has the same contract as the free [`run_batch`]:
/// results in job order, automatic balancing via a shared counter, and
/// panics propagated to the caller. The differences are lifetime-shaped:
/// pool jobs must be `'static` (workers outlive the call), and the
/// calling thread participates in the batch, so a pool is never idle
/// while its submitter spins.
///
/// Dropping the pool joins every worker; tasks already queued finish
/// first.
///
/// # Examples
///
/// ```
/// use redeval::exec::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.run_batch(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// // The same workers serve the next batch — no respawn.
/// assert_eq!(pool.run_batch(3, |i| i + 1), vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl Pool {
    /// A pool with `threads` persistent workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared::default());
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("redeval-pool-{i}"))
                    .spawn(move || loop {
                        let task = {
                            let mut queue = shared.queue.lock().expect("pool queue lock");
                            loop {
                                if let Some(task) = queue.pop_front() {
                                    break task;
                                }
                                if shared.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                queue = shared.ready.wait(queue).expect("pool queue wait");
                            }
                        };
                        task();
                    })
                    .expect("pool worker spawns")
            })
            .collect();
        Pool { shared, workers }
    }

    /// The number of persistent workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `jobs` independent jobs across the pool (the calling thread
    /// helps) and returns the results **in job order** — the reusable
    /// counterpart of the free [`run_batch`].
    ///
    /// Concurrent `run_batch` calls interleave safely: each batch claims
    /// its own job indices, workers drain whatever batch is queued.
    /// Calling it from *inside* a pool job is safe too (the submitting
    /// job works the batch itself even if every worker is busy), though
    /// nested batches share the same workers rather than growing them.
    ///
    /// # Panics
    ///
    /// Propagates panics from `job`.
    pub fn run_batch<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let job: Arc<F> = Arc::new(job);
        let state = Arc::new(BatchState::new(jobs));
        // The caller takes one share of the work, so only `jobs - 1`
        // helpers can ever be useful.
        let helpers = self.workers.len().min(jobs - 1);
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            for _ in 0..helpers {
                let job = Arc::clone(&job);
                let state = Arc::clone(&state);
                queue.push_back(Box::new(move || {
                    state.work(&*job);
                    state.helper_finished();
                }));
            }
        }
        for _ in 0..helpers {
            self.shared.ready.notify_one();
        }
        state.work(&*job);
        state.wait_for_helpers(&self.shared, helpers);
        if let Some(payload) = state.panic.lock().expect("batch panic lock").take() {
            std::panic::resume_unwind(payload);
        }
        let mut slots = state.slots.lock().expect("batch slots lock");
        slots
            .drain(..)
            .map(|s| s.expect("every job index assigned exactly once"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            // A panic inside a *task* is contained by run_batch; a worker
            // itself only dies if the pool's own bookkeeping panicked.
            let _ = worker.join();
        }
    }
}

/// Cache key: the bit patterns of all thirteen duration parameters —
/// the *content* of a solve, deliberately excluding the server's name.
/// Keying on bits (not rounded values) keeps the cache exact — two
/// parameter sets collide only when every solve input is identical, so
/// a hit can never change a result. The name is reattached on lookup
/// (see [`AnalysisCache::analysis`]): it labels report rows but cannot
/// influence a single solved number, so tiers that differ only in name
/// share one SRN solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ParamsKey {
    bits: [u64; 13],
}

impl ParamsKey {
    fn of(p: &ServerParams) -> ParamsKey {
        let b = |d: Durations| d.as_hours().to_bits();
        ParamsKey {
            bits: [
                b(p.hw_mtbf),
                b(p.hw_repair),
                b(p.os_mtbf),
                b(p.os_repair),
                b(p.os_patch),
                b(p.os_reboot_patch),
                b(p.os_reboot_failure),
                b(p.svc_mtbf),
                b(p.svc_repair),
                b(p.svc_patch),
                b(p.svc_reboot_patch),
                b(p.svc_reboot_failure),
                b(p.patch_interval),
            ],
        }
    }
}

/// How many distinct parameter contents the cache holds before it is
/// flushed wholesale (see [`AnalysisCache::analysis`]). Far above any
/// single batch (a sweep touches tiers × patch-interval variants), so a
/// flush only ever hits a long-running session that has evaluated
/// thousands of unrelated scenarios.
const DEFAULT_ANALYSIS_CAPACITY: usize = 4096;

/// One cache slot: either a finished solve (with its named relabels) or
/// a marker that some thread is solving this key right now.
#[derive(Debug)]
enum Slot {
    /// A solve is in flight on another thread; wait for its result.
    InFlight,
    /// Solved. Index 0 is the originally solved analysis, later entries
    /// are relabels of it.
    Ready(Vec<Arc<ServerAnalysis>>),
}

/// A thread-safe cache of per-tier lower-layer SRN solves.
///
/// The lower-layer solve of a tier depends only on its [`ServerParams`],
/// never on server counts, so one solve serves every design in a batch —
/// and, when the cache is shared (it is an `Arc` inside [`Sweep`] /
/// [`Experiment`], and `redeval serve` holds one for its whole
/// lifetime), every batch in the session. Entries are keyed by
/// parameter *content* (the thirteen duration bit patterns), not by
/// tier name: editing one tier's one rate re-solves exactly that tier,
/// while renames and vulnerability edits re-solve nothing.
/// [`hits`](AnalysisCache::hits), [`solves`](AnalysisCache::solves) and
/// [`relabels`](AnalysisCache::relabels) expose the dedup for tests and
/// diagnostics, and an attached [`Telemetry`] handle mirrors them into
/// the process-wide counter snapshot.
#[derive(Debug)]
pub struct AnalysisCache {
    map: Mutex<HashMap<ParamsKey, Slot>>,
    /// Signalled whenever an in-flight solve completes (or fails).
    ready: Condvar,
    capacity: usize,
    hits: AtomicUsize,
    solves: AtomicUsize,
    relabels: AtomicUsize,
    telemetry: Telemetry,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisCache {
    /// An empty cache with the default session capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_ANALYSIS_CAPACITY)
    }

    /// An empty cache flushed after `capacity` distinct parameter
    /// contents (clamped to at least 1). The bound keeps a session-long
    /// cache from growing without limit; a flush costs only re-solves,
    /// never correctness.
    pub fn with_capacity(capacity: usize) -> Self {
        AnalysisCache {
            map: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicUsize::new(0),
            solves: AtomicUsize::new(0),
            relabels: AtomicUsize::new(0),
            telemetry: Telemetry::noop(),
        }
    }

    /// An empty cache (default capacity) that mirrors its counters —
    /// and the convergence stats of every solve it performs — into
    /// `telemetry`. This is how the batch layer, the optimizer and the
    /// serving path get instrumented: they all resolve tier solves
    /// through a shared cache.
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        let mut cache = Self::new();
        cache.telemetry = telemetry;
        cache
    }

    /// The telemetry handle counters are mirrored into (the no-op
    /// handle unless constructed via
    /// [`with_telemetry`](AnalysisCache::with_telemetry)).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The solved analysis for `params`, computed on first use.
    ///
    /// A lookup that finds the same parameter content under a
    /// *different* tier name reuses the solved numbers and only swaps
    /// the label (a [`relabel`](AnalysisCache::relabels), not a solve) —
    /// the name feeds report rows, never the SRN. First requests are
    /// **single-flighted** per key: concurrent requests for the same
    /// parameter content perform exactly one solve (the others wait for
    /// it and count as hits), so the hit/solve/relabel counters are
    /// schedule-independent — the same workload reports the same
    /// numbers at any thread count. Requests for *different* keys never
    /// wait on each other (the solve runs outside the map lock).
    ///
    /// # Errors
    ///
    /// Propagates SRN build/solve errors. Failures are not cached; a
    /// waiter re-attempts the solve itself.
    pub fn analysis(&self, params: &ServerParams) -> Result<Arc<ServerAnalysis>, SrnError> {
        let key = ParamsKey::of(params);
        {
            let mut map = self.map.lock().expect("cache lock");
            loop {
                match map.get_mut(&key) {
                    Some(Slot::Ready(variants)) => {
                        if let Some(hit) = variants.iter().find(|a| a.name() == params.name) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.add(Counter::CacheHits, 1);
                            return Ok(Arc::clone(hit));
                        }
                        // Same solve content under a new tier name:
                        // relabel the solved analysis instead of solving
                        // again. Done under the lock (a relabel is one
                        // clone), so each (key, name) pair relabels at
                        // most once however many threads race for it.
                        let relabeled = Arc::new(variants[0].renamed(&params.name));
                        variants.push(Arc::clone(&relabeled));
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.relabels.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.add(Counter::CacheHits, 1);
                        self.telemetry.add(Counter::CacheRelabels, 1);
                        return Ok(relabeled);
                    }
                    Some(Slot::InFlight) => {
                        map = self.ready.wait(map).expect("cache wait");
                    }
                    None => {
                        if map.len() >= self.capacity {
                            // Wholesale flush, but never of in-flight
                            // markers: dropping one would let a second
                            // thread start a duplicate solve.
                            map.retain(|_, slot| matches!(slot, Slot::InFlight));
                        }
                        map.insert(key, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        // Solve outside the lock; waiters for this key sleep on the
        // condvar, requests for other keys proceed untouched.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| params.analyze()));
        let mut map = self.map.lock().expect("cache lock");
        match result {
            Ok(Ok(analysis)) => {
                let solved = Arc::new(analysis);
                self.solves.fetch_add(1, Ordering::Relaxed);
                self.telemetry.add(Counter::CacheSolves, 1);
                self.telemetry.record_solve(&solved.solve_stats());
                map.insert(key, Slot::Ready(vec![Arc::clone(&solved)]));
                self.ready.notify_all();
                Ok(solved)
            }
            Ok(Err(err)) => {
                map.remove(&key);
                self.ready.notify_all();
                Err(err)
            }
            Err(payload) => {
                map.remove(&key);
                self.ready.notify_all();
                drop(map);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// One cached analysis per tier of `spec`, in tier order.
    ///
    /// # Errors
    ///
    /// Propagates SRN build/solve errors.
    pub fn analyses_for(&self, spec: &NetworkSpec) -> Result<Vec<Arc<ServerAnalysis>>, SrnError> {
        spec.tiers()
            .iter()
            .map(|t| self.analysis(&t.params))
            .collect()
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// SRN solves actually performed.
    pub fn solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Cache hits that reused a solve under a different tier name (a
    /// subset of [`hits`](AnalysisCache::hits)).
    pub fn relabels(&self) -> usize {
        self.relabels.load(Ordering::Relaxed)
    }

    /// Distinct parameter *contents* currently cached (named relabels
    /// of one solve share an entry).
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluation unit: a design applied to a network spec under a patch
/// policy and metric configuration.
///
/// The spec is held behind an [`Arc`] so large grids share it instead of
/// cloning it per scenario; the executor also uses the `Arc` identity to
/// group scenarios that can share model construction.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label carried into [`DesignEvaluation::name`].
    pub label: String,
    /// The base specification (model parameters baked in).
    pub spec: Arc<NetworkSpec>,
    /// The redundancy design applied to `spec`.
    pub design: Design,
    /// The patch policy.
    pub patch: PatchPolicy,
    /// Security-metric configuration.
    pub metrics: MetricsConfig,
}

impl Scenario {
    /// A scenario with the default metric configuration.
    pub fn new(
        label: impl Into<String>,
        spec: impl Into<Arc<NetworkSpec>>,
        design: Design,
        patch: PatchPolicy,
    ) -> Self {
        Scenario {
            label: label.into(),
            spec: spec.into(),
            design,
            patch,
            metrics: MetricsConfig::default(),
        }
    }

    /// Evaluates this scenario alone, resolving tier solves through
    /// `cache`. This is the reference (sequential) path: the batch
    /// executor produces bitwise-identical numbers.
    ///
    /// # Errors
    ///
    /// Returns count-validation and solver errors.
    pub fn evaluate(&self, cache: &AnalysisCache) -> Result<DesignEvaluation, EvalError> {
        let analyses = cache.analyses_for(&self.spec)?;
        let spec = self.spec.with_counts(&self.design.counts)?;
        let harm = spec.build_harm();
        let before = harm.metrics(&self.metrics);
        let patch = self.patch;
        let after = harm
            .patched(&move |v| patch.patches(v))
            .metrics(&self.metrics);
        let model = spec.network_model(&analyses);
        Ok(DesignEvaluation {
            name: self.label.clone(),
            counts: self.design.counts.clone(),
            before,
            after,
            coa: model.coa()?,
            availability: model.availability()?,
            expected_up: model.expected_up_servers()?,
        })
    }
}

/// Evaluates one group of scenarios sharing `(spec, counts, metrics)`:
/// the HARM, before-patch metrics and availability solves happen once,
/// the per-policy after-patch metrics once per member.
fn evaluate_cell(
    scenarios: &[Scenario],
    members: &[usize],
    cache: &AnalysisCache,
) -> Result<Vec<DesignEvaluation>, EvalError> {
    let first = &scenarios[members[0]];
    let tel = cache.telemetry();
    let _span = tel.span(format!("cell {}", first.label));
    tel.add(Counter::CellsEvaluated, 1);
    tel.add(Counter::DesignsEvaluated, members.len() as u64);
    tel.add(Counter::HarmBuilds, 1);
    let analyses = cache.analyses_for(&first.spec)?;
    let spec = first.spec.with_counts(&first.design.counts)?;
    let harm = spec.build_harm();
    let before = harm.metrics(&first.metrics);
    let model = spec.network_model(&analyses);
    let coa = model.coa()?;
    let availability = model.availability()?;
    let expected_up = model.expected_up_servers()?;
    members
        .iter()
        .map(|&i| {
            let sc = &scenarios[i];
            let patch = sc.patch;
            let after = harm
                .patched(&move |v| patch.patches(v))
                .metrics(&sc.metrics);
            Ok(DesignEvaluation {
                name: sc.label.clone(),
                counts: sc.design.counts.clone(),
                before: before.clone(),
                after,
                coa,
                availability,
                expected_up,
            })
        })
        .collect()
}

/// An executable batch of [`Scenario`]s.
///
/// Built directly from an explicit scenario list (heterogeneous batches —
/// different topologies, different tier stacks) or via [`Sweep`] for
/// regular grids. Running it returns one [`DesignEvaluation`] per
/// scenario, **in input order**, whatever the thread count.
#[derive(Debug, Clone)]
pub struct Experiment {
    scenarios: Vec<Scenario>,
    threads: usize,
    cache: Arc<AnalysisCache>,
}

impl Experiment {
    /// An experiment over explicit scenarios, with a fresh cache and the
    /// machine's [`default_threads`].
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Experiment {
            scenarios,
            threads: default_threads(),
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares an existing analysis cache (e.g. across experiments).
    pub fn share_cache(mut self, cache: &Arc<AnalysisCache>) -> Self {
        self.cache = Arc::clone(cache);
        self
    }

    /// The scenarios, in evaluation order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Evaluates every scenario and returns the results in scenario
    /// order.
    ///
    /// Scenarios sharing `(spec, counts, metrics)` are grouped so the
    /// policy-independent work (HARM construction, before-patch metrics,
    /// availability solves) is computed once per group; groups run in
    /// parallel on the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest failing scenario (grid order).
    pub fn run(&self) -> Result<Vec<DesignEvaluation>, EvalError> {
        let cells = self.cells();
        let tel = self.cache.telemetry();
        let _span = tel.span(format!("experiment ({} cells)", cells.len()));
        tel.add(Counter::PoolBatches, 1);
        tel.add(Counter::PoolJobs, cells.len() as u64);
        let cell_results = run_batch(cells.len(), self.threads, |ci| {
            evaluate_cell(&self.scenarios, &cells[ci], &self.cache)
        });
        Self::collect(&cells, cell_results, self.scenarios.len())
    }

    /// [`run`](Self::run), but dispatched on a reusable [`Pool`] instead
    /// of per-call scoped threads — the serving path, where one pool
    /// outlives many requests. Results are bitwise-identical to
    /// [`run`](Self::run) for any pool size.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest failing scenario (grid order).
    pub fn run_on(&self, pool: &Pool) -> Result<Vec<DesignEvaluation>, EvalError> {
        let cells = Arc::new(self.cells());
        let scenarios = Arc::new(self.scenarios.clone());
        let cache = Arc::clone(&self.cache);
        let tel = self.cache.telemetry();
        let _span = tel.span(format!("experiment ({} cells)", cells.len()));
        tel.add(Counter::PoolBatches, 1);
        tel.add(Counter::PoolJobs, cells.len() as u64);
        let job_cells = Arc::clone(&cells);
        let cell_results = pool.run_batch(cells.len(), move |ci| {
            evaluate_cell(&scenarios, &job_cells[ci], &cache)
        });
        Self::collect(&cells, cell_results, self.scenarios.len())
    }

    /// Groups scenarios that share spec identity, counts and metric
    /// configuration. Spec identity is Arc pointer identity: distinct
    /// Arcs with equal contents simply form separate groups.
    fn cells(&self) -> Vec<Vec<usize>> {
        let mut cells: Vec<Vec<usize>> = Vec::new();
        let mut by_key: HashMap<(usize, &[u32]), Vec<usize>> = HashMap::new();
        for (i, sc) in self.scenarios.iter().enumerate() {
            let key = (Arc::as_ptr(&sc.spec) as usize, sc.design.counts.as_slice());
            let candidates = by_key.entry(key).or_default();
            match candidates
                .iter()
                .find(|&&ci| self.scenarios[cells[ci][0]].metrics == sc.metrics)
            {
                Some(&ci) => cells[ci].push(i),
                None => {
                    candidates.push(cells.len());
                    cells.push(vec![i]);
                }
            }
        }
        cells
    }

    /// Scatters per-cell results back to scenario order, reporting the
    /// earliest error a sequential run would have hit.
    fn collect(
        cells: &[Vec<usize>],
        cell_results: Vec<Result<Vec<DesignEvaluation>, EvalError>>,
        scenarios: usize,
    ) -> Result<Vec<DesignEvaluation>, EvalError> {
        let mut out: Vec<Option<DesignEvaluation>> = (0..scenarios).map(|_| None).collect();
        let mut first_err: Option<EvalError> = None;
        let mut first_err_at = usize::MAX;
        for (members, result) in cells.iter().zip(cell_results) {
            match result {
                Ok(evals) => {
                    for (&i, e) in members.iter().zip(evals) {
                        out[i] = Some(e);
                    }
                }
                Err(err) => {
                    // A cell fails as a unit; its earliest member is where
                    // a sequential run would first hit the same error.
                    let at = members[0];
                    if at < first_err_at {
                        first_err_at = at;
                        first_err = Some(err);
                    }
                }
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every scenario evaluated"))
            .collect())
    }
}

/// Declarative grid builder: spec variants × designs × patch policies.
///
/// Grid order is variant-major, then design, then policy — the order
/// [`Sweep::scenarios`] materializes and [`Sweep::run`] returns.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: Arc<NetworkSpec>,
    variants: Option<Vec<(String, Arc<NetworkSpec>)>>,
    designs: Vec<Design>,
    policies: Vec<PatchPolicy>,
    metrics: MetricsConfig,
    threads: usize,
    cache: Arc<AnalysisCache>,
}

impl Sweep {
    /// A sweep over `base` with its current counts as the single design,
    /// the paper's critical-only policy, default metrics and
    /// [`default_threads`].
    pub fn new(base: NetworkSpec) -> Self {
        let counts: Vec<u32> = base.tiers().iter().map(|t| t.count).collect();
        let names: Vec<&str> = base.tiers().iter().map(|t| t.name.as_str()).collect();
        let design = Design::new(Design::conventional_name(&names, &counts), counts);
        Sweep {
            base: Arc::new(base),
            variants: None,
            designs: vec![design],
            policies: vec![PatchPolicy::CriticalOnly(8.0)],
            metrics: MetricsConfig::default(),
            threads: default_threads(),
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// A sweep over everything a scenario document declares: its network,
    /// its designs, its patch policies and its metric configuration, with
    /// [`default_threads`] and a fresh cache.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation errors (see
    /// [`ScenarioDoc::to_spec`](crate::scenario::ScenarioDoc::to_spec)).
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval::exec::Sweep;
    /// use redeval::scenario::builtin;
    ///
    /// # fn main() -> Result<(), redeval::EvalError> {
    /// let doc = builtin::paper_case_study();
    /// let evals = Sweep::from_scenario(&doc)?.run()?;
    /// assert_eq!(evals.len(), 5); // five designs × one policy
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_scenario(doc: &crate::scenario::ScenarioDoc) -> Result<Self, EvalError> {
        let spec = doc.to_spec()?;
        Ok(Sweep::new(spec)
            .designs(doc.designs.clone())
            .policies(doc.policies.clone())
            .metrics(doc.metrics))
    }

    /// Sets the design axis.
    ///
    /// # Panics
    ///
    /// Panics on an empty design list.
    pub fn designs(mut self, designs: Vec<Design>) -> Self {
        assert!(!designs.is_empty(), "at least one design required");
        self.designs = designs;
        self
    }

    /// Sets the design axis to the full space `1..=max_redundancy` per
    /// tier (see [`NetworkSpec::enumerate_designs`]).
    pub fn full_design_space(self, max_redundancy: u32) -> Self {
        let designs = self.base.enumerate_designs(max_redundancy);
        self.designs(designs)
    }

    /// Sets the patch-policy axis.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list.
    pub fn policies(mut self, policies: Vec<PatchPolicy>) -> Self {
        assert!(!policies.is_empty(), "at least one policy required");
        self.policies = policies;
        self
    }

    /// Sets the model-parameter axis to explicit named spec variants.
    ///
    /// # Panics
    ///
    /// Panics on an empty variant list.
    pub fn variants(mut self, variants: Vec<(String, NetworkSpec)>) -> Self {
        assert!(!variants.is_empty(), "at least one variant required");
        self.variants = Some(
            variants
                .into_iter()
                .map(|(name, spec)| (name, Arc::new(spec)))
                .collect(),
        );
        self
    }

    /// Sets the model-parameter axis to patch-interval variants of the
    /// base spec, one per entry of `days` (applied to every tier).
    ///
    /// # Panics
    ///
    /// Panics on an empty list or non-positive interval.
    pub fn patch_intervals_days(self, days: &[f64]) -> Self {
        let base = Arc::clone(&self.base);
        let variants = days
            .iter()
            .map(|&d| {
                let label = format!("{d} d");
                (label, base.with_patch_interval(Durations::days(d)))
            })
            .collect();
        self.variants(variants)
    }

    /// Sets the security-metric configuration for every scenario.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares an existing analysis cache (e.g. across sweeps, or to
    /// inspect hit/solve counters after the run).
    pub fn share_cache(mut self, cache: &Arc<AnalysisCache>) -> Self {
        self.cache = Arc::clone(cache);
        self
    }

    /// Materializes the grid in variant-major, design, policy order.
    ///
    /// Labels are the design name, prefixed with the variant name and
    /// suffixed with the policy when the corresponding axis has more than
    /// one point.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let base_variant = [(String::new(), Arc::clone(&self.base))];
        let variants: &[(String, Arc<NetworkSpec>)] = match &self.variants {
            Some(v) => v,
            None => &base_variant,
        };
        let multi_variant = variants.len() > 1;
        let multi_policy = self.policies.len() > 1;
        let mut out = Vec::with_capacity(variants.len() * self.designs.len() * self.policies.len());
        for (vname, vspec) in variants {
            for design in &self.designs {
                for &policy in &self.policies {
                    let mut label = String::new();
                    if multi_variant && !vname.is_empty() {
                        label.push_str(vname);
                        label.push_str(" | ");
                    }
                    label.push_str(&design.name);
                    if multi_policy {
                        label.push_str(&format!(" | {policy}"));
                    }
                    out.push(Scenario {
                        label,
                        spec: Arc::clone(vspec),
                        design: design.clone(),
                        patch: policy,
                        metrics: self.metrics,
                    });
                }
            }
        }
        out
    }

    /// The total number of grid points.
    pub fn len(&self) -> usize {
        let variants = self.variants.as_ref().map_or(1, Vec::len);
        variants * self.designs.len() * self.policies.len()
    }

    /// Whether the grid is empty (never true: every axis keeps ≥ 1 point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the executable [`Experiment`] for this grid.
    pub fn build(&self) -> Experiment {
        Experiment {
            scenarios: self.scenarios(),
            threads: self.threads,
            cache: Arc::clone(&self.cache),
        }
    }

    /// Materializes and runs the grid; results follow grid order.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest failing scenario.
    pub fn run(&self) -> Result<Vec<DesignEvaluation>, EvalError> {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn run_batch_orders_results_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_batch(17, threads, |i| 3 * i);
            assert_eq!(out, (0..17).map(|i| 3 * i).collect::<Vec<_>>());
        }
        assert!(run_batch(0, 4, |i| i).is_empty());
    }

    #[test]
    fn pool_reuses_workers_across_batches_and_orders_results() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        for jobs in [0, 1, 2, 17, 64] {
            let out = pool.run_batch(jobs, |i| 7 * i);
            assert_eq!(out, (0..jobs).map(|i| 7 * i).collect::<Vec<_>>());
        }
        // Zero threads clamps to one worker instead of a dead pool.
        assert_eq!(Pool::new(0).run_batch(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_matches_scoped_run_batch() {
        let pool = Pool::new(4);
        let scoped = run_batch(23, 4, |i| i * i + 1);
        assert_eq!(pool.run_batch(23, |i| i * i + 1), scoped);
    }

    #[test]
    fn pool_survives_nested_batches_even_with_one_worker() {
        // A pool job submitting a nested batch must not deadlock: the
        // waiter drains the shared queue instead of sleeping on it.
        let pool = Arc::new(Pool::new(1));
        let inner = Arc::clone(&pool);
        let out = pool.run_batch(3, move |i| inner.run_batch(2, move |j| i * 10 + j));
        assert_eq!(out, vec![vec![0, 1], vec![10, 11], vec![20, 21]]);
    }

    #[test]
    fn pool_propagates_job_panics() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch(8, |i| {
                assert!(i != 5, "job five exploded");
                i
            })
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked batch.
        assert_eq!(pool.run_batch(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn experiment_run_on_pool_is_bitwise_identical_to_run() {
        let pool = Pool::new(4);
        let sweep = Sweep::new(case_study::network())
            .designs(case_study::five_designs())
            .policies(vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All]);
        let exp = sweep.build();
        let scoped = exp.run().unwrap();
        let pooled = exp.run_on(&pool).unwrap();
        assert_eq!(scoped, pooled);
        for (a, b) in scoped.iter().zip(&pooled) {
            assert_eq!(a.coa.to_bits(), b.coa.to_bits());
            assert_eq!(a.availability.to_bits(), b.availability.to_bits());
        }
        // Errors surface identically too.
        let spec = Arc::new(case_study::network());
        let bad = Experiment::new(vec![Scenario::new(
            "bad",
            spec,
            Design::new("bad", vec![1, 1]),
            PatchPolicy::All,
        )]);
        assert!(matches!(
            bad.run_on(&pool),
            Err(EvalError::CountMismatch { .. })
        ));
    }

    #[test]
    fn cache_dedupes_tier_solves() {
        let cache = AnalysisCache::new();
        let spec = case_study::network();
        // Four tiers with distinct parameters: four solves, zero hits.
        let first = cache.analyses_for(&spec).unwrap();
        assert_eq!(cache.solves(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // Every further request is a hit, and the values are shared.
        let second = cache.analyses_for(&spec).unwrap();
        assert_eq!(cache.solves(), 4);
        assert_eq!(cache.hits(), 4);
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn cache_distinguishes_parameter_changes() {
        let cache = AnalysisCache::new();
        let a = case_study::dns_params();
        let mut b = case_study::dns_params();
        b.patch_interval = Durations::hours(360.0);
        cache.analysis(&a).unwrap();
        cache.analysis(&b).unwrap();
        assert_eq!(cache.solves(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cache_relabels_same_content_under_a_new_name_without_solving() {
        let cache = AnalysisCache::new();
        let a = case_study::dns_params();
        let mut b = case_study::dns_params();
        b.name = "dns replica".to_string();
        let first = cache.analysis(&a).unwrap();
        let relabeled = cache.analysis(&b).unwrap();
        // One solve served both names; the relabel kept the numbers and
        // swapped the label.
        assert_eq!((cache.solves(), cache.relabels()), (1, 1));
        assert_eq!(cache.len(), 1, "named variants share one content entry");
        assert_eq!(relabeled.name(), "dns replica");
        assert_eq!(
            first.availability().to_bits(),
            relabeled.availability().to_bits()
        );
        assert_eq!(first.rates(), relabeled.rates());
        // Both names now hit without further relabeling.
        assert!(Arc::ptr_eq(&cache.analysis(&a).unwrap(), &first));
        assert!(Arc::ptr_eq(&cache.analysis(&b).unwrap(), &relabeled));
        assert_eq!((cache.solves(), cache.relabels()), (1, 1));
    }

    #[test]
    fn cache_capacity_flush_costs_resolves_not_correctness() {
        let cache = AnalysisCache::with_capacity(2);
        let a = case_study::dns_params();
        let mut b = case_study::dns_params();
        b.patch_interval = Durations::hours(360.0);
        let mut c = case_study::dns_params();
        c.patch_interval = Durations::hours(180.0);
        let first = cache.analysis(&a).unwrap();
        cache.analysis(&b).unwrap();
        assert_eq!(cache.len(), 2);
        // The third distinct content flushes the full cache…
        cache.analysis(&c).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.solves(), 3);
        // …and a re-request simply re-solves to identical numbers.
        let again = cache.analysis(&a).unwrap();
        assert_eq!(cache.solves(), 4);
        assert_eq!(
            first.availability().to_bits(),
            again.availability().to_bits()
        );
    }

    #[test]
    fn sweep_matches_sequential_reference_bitwise() {
        let sweep = Sweep::new(case_study::network())
            .designs(case_study::five_designs())
            .policies(vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All])
            .threads(4);
        let parallel = sweep.run().unwrap();
        let cache = AnalysisCache::new();
        let reference: Vec<DesignEvaluation> = sweep
            .scenarios()
            .iter()
            .map(|sc| sc.evaluate(&cache).unwrap())
            .collect();
        assert_eq!(parallel, reference);
    }

    #[test]
    fn sweep_grid_order_is_variant_design_policy() {
        let sweep = Sweep::new(case_study::network())
            .patch_intervals_days(&[7.0, 30.0])
            .designs(case_study::five_designs()[..2].to_vec())
            .policies(vec![PatchPolicy::None, PatchPolicy::All]);
        let scenarios = sweep.scenarios();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(sweep.len(), 8);
        assert!(scenarios[0].label.starts_with("7 d | 1 DNS"));
        assert!(scenarios[0].label.ends_with("no patch"));
        assert!(scenarios[1].label.ends_with("patch all"));
        assert!(scenarios[4].label.starts_with("30 d | 1 DNS"));
    }

    #[test]
    fn experiment_groups_share_policy_independent_work() {
        let sweep = Sweep::new(case_study::network())
            .designs(case_study::five_designs())
            .policies(vec![
                PatchPolicy::None,
                PatchPolicy::CriticalOnly(8.0),
                PatchPolicy::All,
            ]);
        let evals = sweep.run().unwrap();
        assert_eq!(evals.len(), 15);
        // The three policies of one design share before-patch metrics.
        assert_eq!(evals[0].before, evals[1].before);
        assert_eq!(evals[1].before, evals[2].before);
        assert_eq!(evals[0].coa.to_bits(), evals[2].coa.to_bits());
        // And the policy axis orders after-patch security as expected.
        assert!(
            evals[0].after.attack_success_probability >= evals[1].after.attack_success_probability
        );
        assert_eq!(evals[2].after.exploitable_vulnerabilities, 0);
    }

    #[test]
    fn experiment_reports_earliest_error() {
        let spec = Arc::new(case_study::network());
        let good = Scenario::new(
            "ok",
            Arc::clone(&spec),
            Design::new("ok", vec![1, 1, 1, 1]),
            PatchPolicy::All,
        );
        let bad = Scenario::new(
            "bad",
            Arc::clone(&spec),
            Design::new("bad", vec![1, 1]),
            PatchPolicy::All,
        );
        let exp = Experiment::new(vec![good, bad]).threads(2);
        assert!(matches!(exp.run(), Err(EvalError::CountMismatch { .. })));
    }

    #[test]
    fn shared_cache_spans_batches() {
        let cache = Arc::new(AnalysisCache::new());
        let sweep = Sweep::new(case_study::network()).share_cache(&cache);
        sweep.run().unwrap();
        let solves_after_first = cache.solves();
        assert_eq!(solves_after_first, 4);
        // A second batch over the same spec re-solves nothing.
        Sweep::new(case_study::network())
            .share_cache(&cache)
            .designs(case_study::five_designs())
            .run()
            .unwrap();
        assert_eq!(cache.solves(), solves_after_first);
    }
}
