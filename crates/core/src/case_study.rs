//! The paper's complete case study: the example enterprise network of
//! Figure 2 with the vulnerability data of Table I and the SRN parameters
//! of Table IV.
//!
//! Everything here is data + thin constructors; the numbers come straight
//! from the paper (see `DESIGN.md` §3–§4 for the few reconstructed values
//! and the README's reproduction index for the per-table validation).

use redeval_avail::{Durations, ServerParams};
use redeval_cvss::v2::BaseVector;
use redeval_harm::{AttackTree, Vulnerability};

use crate::evaluation::Evaluator;
use crate::spec::{Design, NetworkSpec};
use crate::EvalError;

/// A Table-I row: id, CVE, attack impact, attack success probability, and
/// the reconstructed CVSS v2 vector that reproduces those two values.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnRecord {
    /// Paper-local id (`v1web`, …).
    pub id: &'static str,
    /// CVE identifier.
    pub cve: &'static str,
    /// Attack impact (CVSS v2 impact subscore).
    pub impact: f64,
    /// Attack success probability (CVSS v2 exploitability / 10).
    pub probability: f64,
    /// Reconstructed CVSS v2 vector.
    pub vector: &'static str,
}

/// All sixteen Table-I vulnerabilities.
pub const VULNERABILITIES: [VulnRecord; 16] = [
    VulnRecord {
        id: "v1dns",
        cve: "CVE-2016-3227",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v1web",
        cve: "CVE-2016-4448",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v2web",
        cve: "CVE-2015-4602",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v3web",
        cve: "CVE-2015-4603",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v4web",
        cve: "CVE-2016-4979",
        impact: 2.9,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:P/I:N/A:N",
    },
    VulnRecord {
        id: "v5web",
        cve: "CVE-2016-4805",
        impact: 10.0,
        probability: 0.39,
        vector: "AV:L/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v1app",
        cve: "CVE-2016-3586",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v2app",
        cve: "CVE-2016-3510",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v3app",
        cve: "CVE-2016-3499",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v4app",
        cve: "CVE-2016-0638",
        impact: 6.4,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:P/I:P/A:P",
    },
    VulnRecord {
        id: "v5app",
        cve: "CVE-2016-4997",
        impact: 10.0,
        probability: 0.39,
        vector: "AV:L/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v1db",
        cve: "CVE-2016-6662",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v2db",
        cve: "CVE-2016-0639",
        impact: 10.0,
        probability: 1.0,
        vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v3db",
        cve: "CVE-2015-3152",
        impact: 2.9,
        probability: 0.86,
        vector: "AV:N/AC:M/Au:N/C:P/I:N/A:N",
    },
    VulnRecord {
        id: "v4db",
        cve: "CVE-2016-3471",
        impact: 10.0,
        probability: 0.39,
        vector: "AV:L/AC:L/Au:N/C:C/I:C/A:C",
    },
    VulnRecord {
        id: "v5db",
        cve: "CVE-2016-4997",
        impact: 10.0,
        probability: 0.39,
        vector: "AV:L/AC:L/Au:N/C:C/I:C/A:C",
    },
];

/// Looks a Table-I record up by its paper-local id.
///
/// # Panics
///
/// Panics for an unknown id (programming error in callers).
pub fn vuln(id: &str) -> Vulnerability {
    let r = VULNERABILITIES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unknown vulnerability id {id}"));
    Vulnerability::new(format!("{} ({})", r.id, r.cve), r.impact, r.probability)
}

/// Verifies that a record's reconstructed CVSS vector reproduces its
/// Table-I values (used by tests and the `table1` bench binary).
pub fn vector_consistent(r: &VulnRecord) -> bool {
    let Ok(v) = r.vector.parse::<BaseVector>() else {
        return false;
    };
    (v.attack_impact() - r.impact).abs() < 1e-9
        && (v.attack_success_probability() - r.probability).abs() < 1e-9
}

/// The DNS server's attack tree: `OR(v1dns)`.
pub fn dns_tree() -> AttackTree {
    AttackTree::or(vec![AttackTree::leaf(vuln("v1dns"))])
}

/// The web server's attack tree:
/// `OR(v1web, v2web, v3web, AND(v4web, v5web))` — the paper's worked
/// example with impact 12.9.
pub fn web_tree() -> AttackTree {
    AttackTree::or(vec![
        AttackTree::leaf(vuln("v1web")),
        AttackTree::leaf(vuln("v2web")),
        AttackTree::leaf(vuln("v3web")),
        AttackTree::and(vec![
            AttackTree::leaf(vuln("v4web")),
            AttackTree::leaf(vuln("v5web")),
        ]),
    ])
}

/// The application server's attack tree (impact 16.4).
pub fn app_tree() -> AttackTree {
    AttackTree::or(vec![
        AttackTree::leaf(vuln("v1app")),
        AttackTree::leaf(vuln("v2app")),
        AttackTree::leaf(vuln("v3app")),
        AttackTree::and(vec![
            AttackTree::leaf(vuln("v4app")),
            AttackTree::leaf(vuln("v5app")),
        ]),
    ])
}

/// The database server's attack tree:
/// `OR(v1db, v2db, AND(v3db, v4db), v5db)` (impact 12.9 before *and*
/// after patching, matching the paper's `aim_db1`).
pub fn db_tree() -> AttackTree {
    AttackTree::or(vec![
        AttackTree::leaf(vuln("v1db")),
        AttackTree::leaf(vuln("v2db")),
        AttackTree::and(vec![
            AttackTree::leaf(vuln("v3db")),
            AttackTree::leaf(vuln("v4db")),
        ]),
        AttackTree::leaf(vuln("v5db")),
    ])
}

/// Table IV parameters for the DNS server (exact paper values).
pub fn dns_params() -> ServerParams {
    ServerParams::builder("dns")
        .hardware(Durations::hours(87_600.0), Durations::hours(1.0))
        .os_failure(Durations::hours(1440.0), Durations::hours(1.0))
        .os_patch(Durations::minutes(20.0), Durations::minutes(10.0))
        .os_reboot_after_failure(Durations::minutes(10.0))
        .service_failure(Durations::hours(336.0), Durations::minutes(30.0))
        .service_patch(Durations::minutes(5.0), Durations::minutes(5.0))
        .service_reboot_after_failure(Durations::minutes(5.0))
        .patch_interval(Durations::hours(720.0))
        .build()
}

/// Web-server parameters (patch durations chosen so the patch cycle is
/// 35 min, reproducing Table V's web MTTR; see DESIGN.md §4.3).
pub fn web_params() -> ServerParams {
    ServerParams::builder("web")
        .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
        .os_patch(Durations::minutes(10.0), Durations::minutes(10.0))
        .build()
}

/// Application-server parameters (60-min patch cycle → Table V app MTTR).
pub fn app_params() -> ServerParams {
    ServerParams::builder("app")
        .service_patch(Durations::minutes(15.0), Durations::minutes(5.0))
        .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
        .build()
}

/// Database-server parameters (55-min patch cycle → Table V db MTTR).
pub fn db_params() -> ServerParams {
    ServerParams::builder("db")
        .service_patch(Durations::minutes(10.0), Durations::minutes(5.0))
        .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
        .build()
}

/// The example enterprise network of Figure 2: 1 DNS + 2 WEB + 2 APP +
/// 1 DB, attacker entering at the DMZs (DNS and web), database as the
/// attack goal.
///
/// Built from the reference scenario document
/// ([`scenario::builtin::paper_case_study`](crate::scenario::builtin::paper_case_study)),
/// so the entire golden corpus continuously proves that the declarative
/// scenario path reproduces the paper's network bit-for-bit. The document
/// assembles the same Table-I vectors, attack-tree shapes and Table-IV
/// parameters this module defines.
pub fn network() -> NetworkSpec {
    crate::scenario::builtin::paper_case_study()
        .to_spec()
        .expect("the reference scenario document is valid")
}

/// The five redundancy designs of Section IV (Figures 6 and 7).
pub fn five_designs() -> Vec<Design> {
    vec![
        Design::new("1 DNS + 1 WEB + 1 APP + 1 DB", vec![1, 1, 1, 1]),
        Design::new("2 DNS + 1 WEB + 1 APP + 1 DB", vec![2, 1, 1, 1]),
        Design::new("1 DNS + 2 WEB + 1 APP + 1 DB", vec![1, 2, 1, 1]),
        Design::new("1 DNS + 1 WEB + 2 APP + 1 DB", vec![1, 1, 2, 1]),
        Design::new("1 DNS + 1 WEB + 1 APP + 2 DB", vec![1, 1, 1, 2]),
    ]
}

/// An [`Evaluator`] over the case-study network with the paper's patch
/// policy (critical = base score > 8.0).
///
/// # Errors
///
/// Propagates lower-layer SRN solve errors.
pub fn evaluator() -> Result<Evaluator, EvalError> {
    Evaluator::new(network())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::{AspStrategy, MetricsConfig, OrCombine};

    #[test]
    fn all_vectors_reproduce_table_i() {
        for r in &VULNERABILITIES {
            assert!(vector_consistent(r), "{} vector inconsistent", r.id);
        }
    }

    #[test]
    fn critical_set_is_the_nine_remote_root_vulns() {
        let critical: Vec<&str> = VULNERABILITIES
            .iter()
            .filter(|r| vuln(r.id).is_critical(8.0))
            .map(|r| r.id)
            .collect();
        assert_eq!(
            critical,
            ["v1dns", "v1web", "v2web", "v3web", "v1app", "v2app", "v3app", "v1db", "v2db"]
        );
    }

    #[test]
    fn tree_impacts_match_paper() {
        assert!((dns_tree().impact() - 10.0).abs() < 1e-12);
        assert!((web_tree().impact() - 12.9).abs() < 1e-12);
        assert!((app_tree().impact() - 16.4).abs() < 1e-12);
        assert!((db_tree().impact() - 12.9).abs() < 1e-12);
    }

    #[test]
    fn after_patch_tree_impacts() {
        let crit = |v: &Vulnerability| v.is_critical(8.0);
        assert!(dns_tree().without(&crit).is_none());
        let web = web_tree().without(&crit).unwrap();
        assert!((web.impact() - 12.9).abs() < 1e-12);
        assert_eq!(web.leaf_count(), 2);
        let app = app_tree().without(&crit).unwrap();
        assert!((app.impact() - 16.4).abs() < 1e-12);
        let db = db_tree().without(&crit).unwrap();
        assert!((db.impact() - 12.9).abs() < 1e-12);
        assert_eq!(db.leaf_count(), 3);
    }

    /// Table II, structural metrics (exact).
    #[test]
    fn table_ii_structural_metrics() {
        let harm = network().build_harm();
        let cfg = MetricsConfig::default();
        let before = harm.metrics(&cfg);
        assert!((before.attack_impact - 52.2).abs() < 1e-9);
        assert_eq!(before.attack_success_probability, 1.0);
        assert_eq!(before.attack_paths, 8);
        assert_eq!(before.entry_points, 3);
        // Paper prints NoEV = 25; per-server counts {1,5,5,5,5,5} sum to 26
        // (see EXPERIMENTS.md for the documented inconsistency).
        assert_eq!(before.exploitable_vulnerabilities, 26);

        let after = harm.patched_critical(8.0).metrics(&cfg);
        assert!((after.attack_impact - 42.2).abs() < 1e-9);
        assert_eq!(after.attack_paths, 4);
        assert_eq!(after.entry_points, 2);
        assert_eq!(after.exploitable_vulnerabilities, 11);
        assert!(after.attack_success_probability < 0.5);
    }

    /// Table II ASP after patch, under all three aggregation strategies
    /// (the paper's 0.265 sits inside this family; EXPERIMENTS.md).
    #[test]
    fn table_ii_asp_after_family() {
        let harm = network().build_harm().patched_critical(8.0);
        let asp = |s: AspStrategy, oc: OrCombine| {
            harm.metrics(&MetricsConfig {
                asp: s,
                or_combine: oc,
                ..Default::default()
            })
            .attack_success_probability
        };
        let max_max = asp(AspStrategy::MaxPath, OrCombine::Max);
        let nor_nor = asp(AspStrategy::NoisyOrPaths, OrCombine::NoisyOr);
        let rel = asp(AspStrategy::Reliability, OrCombine::NoisyOr);
        // web/app = 0.39, db(max) = 0.39 -> path 0.0593.
        assert!((max_max - 0.39f64 * 0.39 * 0.39).abs() < 1e-9);
        // db(noisy-or) = 0.5946 -> path 0.0905, 4 paths or-combined.
        let p = 0.39f64 * 0.39 * (1.0 - (1.0 - 0.86 * 0.39) * (1.0 - 0.39));
        assert!((nor_nor - (1.0 - (1.0 - p).powi(4))).abs() < 1e-9);
        // Exact reliability: (web layer)·(app layer)·db.
        let layer = 1.0 - (1.0 - 0.39f64) * (1.0 - 0.39);
        let db = 1.0 - (1.0 - 0.86 * 0.39) * (1.0 - 0.39);
        assert!((rel - layer * layer * db).abs() < 1e-9);
        // The paper's 0.265 lies within the family's envelope.
        assert!(max_max < 0.265 && 0.265 < nor_nor);
    }

    /// The COA of the case-study network (Table VI commentary: ≈ 0.99707).
    #[test]
    fn case_study_coa() {
        let spec = network();
        let analyses = spec.tier_analyses().unwrap();
        let coa = spec.network_model(&analyses).coa().unwrap();
        assert!((coa - 0.99707).abs() < 5e-5, "COA {coa}");
    }

    /// Table V: aggregated rates for all four tiers.
    #[test]
    fn table_v_all_tiers() {
        let spec = network();
        let analyses = spec.tier_analyses().unwrap();
        let expected_mu = [1.49992, 1.71420, 0.99995, 1.09085];
        for (a, mu) in analyses.iter().zip(expected_mu) {
            assert!((a.rates().lambda_eq - 1.0 / 720.0).abs() < 1e-12);
            let rel = (a.rates().mu_eq - mu).abs() / mu;
            assert!(rel < 1e-3, "{}: {} vs {}", a.name(), a.rates().mu_eq, mu);
        }
    }

    #[test]
    fn five_designs_have_four_counts_each() {
        for d in five_designs() {
            assert_eq!(d.counts.len(), 4);
            assert!(d.counts.iter().filter(|&&c| c == 2).count() <= 1);
        }
    }
}
