//! Parameter sensitivity analysis: which input rate moves the
//! capacity-oriented availability most?
//!
//! The paper picks redundancy designs from point estimates of Table IV
//! parameters; this module quantifies how sensitive the COA conclusion is
//! to each of them, by central finite differences on the full pipeline
//! (lower-layer SRN solve → aggregation → product-form COA). Elasticities
//! (`d log COA-loss / d log θ`) make parameters with different units
//! comparable.

use redeval_avail::{Durations, ServerParams};

use crate::spec::NetworkSpec;
use crate::EvalError;

/// Which duration parameter of a tier's servers is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parameter {
    /// Mean application patch duration (1/α_svc).
    ServicePatch,
    /// Mean OS patch duration (1/α_os).
    OsPatch,
    /// Mean OS reboot after patch (1/β_os).
    OsRebootPatch,
    /// Mean service reboot after patch (1/β_svc).
    ServiceRebootPatch,
    /// Mean patch interval (1/τ_p).
    PatchInterval,
}

impl Parameter {
    /// All analysed parameters.
    pub const ALL: [Parameter; 5] = [
        Parameter::ServicePatch,
        Parameter::OsPatch,
        Parameter::OsRebootPatch,
        Parameter::ServiceRebootPatch,
        Parameter::PatchInterval,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Parameter::ServicePatch => "1/α_svc (app patch)",
            Parameter::OsPatch => "1/α_os (os patch)",
            Parameter::OsRebootPatch => "1/β_os (os reboot)",
            Parameter::ServiceRebootPatch => "1/β_svc (svc reboot)",
            Parameter::PatchInterval => "1/τ_p (patch interval)",
        }
    }

    fn get(self, p: &ServerParams) -> f64 {
        match self {
            Parameter::ServicePatch => p.svc_patch.as_hours(),
            Parameter::OsPatch => p.os_patch.as_hours(),
            Parameter::OsRebootPatch => p.os_reboot_patch.as_hours(),
            Parameter::ServiceRebootPatch => p.svc_reboot_patch.as_hours(),
            Parameter::PatchInterval => p.patch_interval.as_hours(),
        }
    }

    fn set(self, p: &mut ServerParams, hours: f64) {
        let d = Durations::hours(hours);
        match self {
            Parameter::ServicePatch => p.svc_patch = d,
            Parameter::OsPatch => p.os_patch = d,
            Parameter::OsRebootPatch => p.os_reboot_patch = d,
            Parameter::ServiceRebootPatch => p.svc_reboot_patch = d,
            Parameter::PatchInterval => p.patch_interval = d,
        }
    }
}

/// Sensitivity of the COA *loss* (`1 − COA`) to one tier parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Tier name.
    pub tier: String,
    /// The perturbed parameter.
    pub parameter: Parameter,
    /// Base value (hours).
    pub value_hours: f64,
    /// Finite-difference derivative `d(1−COA)/dθ` (per hour).
    pub derivative: f64,
    /// Elasticity `d log(1−COA) / d log θ` — dimensionless.
    pub elasticity: f64,
}

/// Computes COA-loss sensitivities of every `(tier, parameter)` pair by
/// central differences with relative step `rel_step` (e.g. `0.05`),
/// sequentially.
///
/// Equivalent to [`coa_sensitivities_batch`] with one thread.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics when `rel_step` is not within `(0, 0.5)`.
pub fn coa_sensitivities(
    spec: &NetworkSpec,
    counts: &[u32],
    rel_step: f64,
) -> Result<Vec<Sensitivity>, EvalError> {
    coa_sensitivities_batch(spec, counts, rel_step, 1)
}

/// Computes the COA-loss sensitivities of [`coa_sensitivities`] with the
/// `(tier, parameter)` perturbation pairs spread over up to `threads`
/// worker threads (each pair costs two full pipeline solves).
///
/// The ranking is identical to the sequential path for any thread count:
/// pairs are computed independently and merged in job order before the
/// stable sort by |elasticity|.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics when `rel_step` is not within `(0, 0.5)`.
pub fn coa_sensitivities_batch(
    spec: &NetworkSpec,
    counts: &[u32],
    rel_step: f64,
    threads: usize,
) -> Result<Vec<Sensitivity>, EvalError> {
    assert!(
        rel_step > 0.0 && rel_step < 0.5,
        "relative step must be in (0, 0.5)"
    );
    let coa_of = |spec: &NetworkSpec| -> Result<f64, EvalError> {
        let design = spec.with_counts(counts)?;
        let analyses: Vec<redeval_avail::ServerAnalysis> = design.tier_analyses()?;
        Ok(design.network_model(&analyses).coa()?)
    };
    let base_coa = coa_of(spec)?;
    let base_loss = 1.0 - base_coa;

    let pairs: Vec<(usize, Parameter)> = (0..spec.tiers().len())
        .flat_map(|ti| Parameter::ALL.into_iter().map(move |p| (ti, p)))
        .collect();
    let results = crate::exec::run_batch(pairs.len(), threads, |job| -> Result<_, EvalError> {
        let (ti, param) = pairs[job];
        let tier = &spec.tiers()[ti];
        let theta = param.get(&tier.params);
        let step = theta * rel_step;
        let perturbed = |value: f64| -> Result<f64, EvalError> {
            let mut tiers = spec.tiers().to_vec();
            param.set(&mut tiers[ti].params, value);
            let s = NetworkSpec::new(tiers, spec.edges().to_vec());
            coa_of(&s)
        };
        let hi = 1.0 - perturbed(theta + step)?;
        let lo = 1.0 - perturbed(theta - step)?;
        let derivative = (hi - lo) / (2.0 * step);
        let elasticity = if base_loss > 0.0 {
            derivative * theta / base_loss
        } else {
            0.0
        };
        Ok(Sensitivity {
            tier: tier.name.clone(),
            parameter: param,
            value_hours: theta,
            derivative,
            elasticity,
        })
    });
    let mut out = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("finite elasticities")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn longer_patches_increase_loss() {
        let spec = case_study::network();
        let sens = coa_sensitivities(&spec, &[1, 2, 2, 1], 0.05).unwrap();
        // Every patch/reboot duration has a positive derivative (longer
        // downtime → more loss); the patch interval has a negative one
        // (rarer patching → less loss).
        for s in &sens {
            match s.parameter {
                Parameter::PatchInterval => {
                    assert!(s.derivative < 0.0, "{s:?}");
                }
                _ => assert!(s.derivative >= -1e-12, "{s:?}"),
            }
        }
    }

    #[test]
    fn interval_elasticity_near_minus_one() {
        // Loss ≈ Σ cycle/interval, so d log loss / d log interval ≈ −1
        // for each tier; combined over 4 tiers still ≈ −1 per tier
        // contribution. Check the dns tier's interval elasticity.
        let spec = case_study::network();
        let sens = coa_sensitivities(&spec, &[1, 1, 1, 1], 0.05).unwrap();
        let dns_interval = sens
            .iter()
            .find(|s| s.tier == "dns" && s.parameter == Parameter::PatchInterval)
            .unwrap();
        // dns contributes ~ its share of the loss; elasticity of the
        // total loss to one tier's interval is −share (≈ −0.15..−0.3).
        assert!(dns_interval.elasticity < -0.05);
        assert!(dns_interval.elasticity > -1.0);
    }

    #[test]
    fn single_point_tiers_dominate_under_redundancy() {
        // In the case-study design (web and app duplicated), a redundant
        // server's downtime costs 1/6 of capacity while the db/dns tiers
        // zero the reward — so the single-server tiers top the ranking.
        let spec = case_study::network();
        let sens = coa_sensitivities(&spec, &[1, 2, 2, 1], 0.05).unwrap();
        let top_tiers: Vec<&str> = sens[..3].iter().map(|s| s.tier.as_str()).collect();
        assert!(
            top_tiers.iter().all(|t| *t == "db" || *t == "dns"),
            "{top_tiers:?}"
        );
        // Duplicating a tier strictly reduces the magnitude of its own
        // patch-duration sensitivity: compare app's OS-patch elasticity
        // between the non-redundant and the case-study design.
        let flat = coa_sensitivities(&spec, &[1, 1, 1, 1], 0.05).unwrap();
        let el = |list: &[Sensitivity]| {
            list.iter()
                .find(|s| s.tier == "app" && s.parameter == Parameter::OsPatch)
                .unwrap()
                .derivative
        };
        assert!(el(&flat) > el(&sens), "{} vs {}", el(&flat), el(&sens));
    }

    #[test]
    #[should_panic(expected = "relative step")]
    fn bad_step_panics() {
        let spec = case_study::network();
        let _ = coa_sensitivities(&spec, &[1, 2, 2, 1], 0.9);
    }

    #[test]
    fn batch_is_bitwise_identical_to_sequential() {
        let spec = case_study::network();
        let seq = coa_sensitivities(&spec, &[1, 2, 2, 1], 0.05).unwrap();
        let par = coa_sensitivities_batch(&spec, &[1, 2, 2, 1], 0.05, 4).unwrap();
        assert_eq!(seq, par);
    }
}
