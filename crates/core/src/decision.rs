//! The paper's decision functions: Equations (3) and (4).
//!
//! An administrator defines upper bounds on the security metrics and a
//! lower bound on COA; a design *satisfies* the requirements when every
//! bound holds. [`ScatterBounds`] is Equation (3) (two metrics, the
//! Figure 6 scatter analysis); [`MultiBounds`] is Equation (4) (the
//! Figure 7 radar analysis).

use crate::evaluation::DesignEvaluation;

/// Equation (3): `f(ASP, COA) = 1 ⇔ ASP ≤ φ ∧ COA ≥ ψ`.
///
/// Bounds are checked against the **after-patch** security metrics, as in
/// the paper's Section IV-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterBounds {
    /// φ — upper bound on the attack success probability.
    pub max_asp: f64,
    /// ψ — lower bound on the capacity-oriented availability.
    pub min_coa: f64,
}

impl ScatterBounds {
    /// Evaluates the decision function on a design evaluation.
    pub fn satisfied(&self, e: &DesignEvaluation) -> bool {
        e.after.attack_success_probability <= self.max_asp && e.coa >= self.min_coa
    }

    /// The subset of designs satisfying the bounds (the paper's "region").
    pub fn region<'a>(&self, evals: &'a [DesignEvaluation]) -> Vec<&'a DesignEvaluation> {
        evals.iter().filter(|e| self.satisfied(e)).collect()
    }
}

/// Equation (4): bounds on ASP, NoEV, NoAP, NoEP and COA.
///
/// AIM carries no bound because it is identical across the paper's designs
/// (the longest attack path is shared); a bound can still be expressed by
/// filtering on [`DesignEvaluation::after`] directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiBounds {
    /// φ — upper bound on attack success probability.
    pub max_asp: f64,
    /// ξ — upper bound on the number of exploitable vulnerabilities.
    pub max_noev: usize,
    /// ω — upper bound on the number of attack paths.
    pub max_noap: usize,
    /// κ — upper bound on the number of entry points.
    pub max_noep: usize,
    /// ψ — lower bound on COA.
    pub min_coa: f64,
}

impl MultiBounds {
    /// Evaluates the decision function on a design evaluation.
    pub fn satisfied(&self, e: &DesignEvaluation) -> bool {
        e.after.attack_success_probability <= self.max_asp
            && e.after.exploitable_vulnerabilities <= self.max_noev
            && e.after.attack_paths <= self.max_noap
            && e.after.entry_points <= self.max_noep
            && e.coa >= self.min_coa
    }

    /// The subset of designs satisfying the bounds.
    pub fn region<'a>(&self, evals: &'a [DesignEvaluation]) -> Vec<&'a DesignEvaluation> {
        evals.iter().filter(|e| self.satisfied(e)).collect()
    }
}

/// Whether `a` Pareto-dominates `b` on (after-patch ASP ↓, COA ↑): at
/// least as good on both axes and strictly better on one.
pub fn dominates(a: &DesignEvaluation, b: &DesignEvaluation) -> bool {
    let (a_asp, b_asp) = (
        a.after.attack_success_probability,
        b.after.attack_success_probability,
    );
    (a_asp <= b_asp && a.coa >= b.coa) && (a_asp < b_asp || a.coa > b.coa)
}

/// Whether the objective point `(a_asp, a_coa)` dominates
/// `(b_asp, b_coa)` — the point-wise form of [`dominates`], shared with
/// the incremental [`ParetoFront`] and the optimizer's bound checks.
pub fn dominates_point(a_asp: f64, a_coa: f64, b_asp: f64, b_coa: f64) -> bool {
    (a_asp <= b_asp && a_coa >= b_coa) && (a_asp < b_asp || a_coa > b_coa)
}

/// An incrementally maintained Pareto front on (ASP ↓, COA ↑).
///
/// Entries are kept sorted by ascending ASP. The non-domination
/// invariant makes COA non-decreasing along that order: a higher-ASP
/// survivor must buy strictly more COA, and equal-ASP survivors share
/// one COA value (exact objective ties are all kept, mirroring
/// [`dominates`]' strictness). Each insertion is a binary search plus a
/// contiguous splice, so building a front from `n` candidates costs
/// O(n log n + removals) instead of the former O(n²) all-pairs scan.
///
/// The surviving *set* is insertion-order independent (the Pareto front
/// of a set is unique, ties included); only the relative order of exact
/// ties reflects insertion order, which [`ParetoFront::into_entries`]
/// exposes for the caller to re-sort under its own tie-break rule.
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    /// `(asp, coa, payload)`, sorted by `asp` ascending, ties in
    /// insertion order.
    entries: Vec<(f64, f64, T)>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront::new()
    }
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront {
            entries: Vec::new(),
        }
    }

    /// Number of members currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First index whose ASP is ≥ `asp` (entries are sorted by ASP).
    fn lower_bound(&self, asp: f64) -> usize {
        self.entries
            .partition_point(|(a, _, _)| a.partial_cmp(&asp).expect("finite ASP").is_lt())
    }

    /// Whether some member dominates the objective point `(asp, coa)` in
    /// the strict-[`dominates`] sense. Equal points are *not* dominated.
    ///
    /// Because COA is non-decreasing in sorted order, only the last
    /// member with ASP < `asp` and the (single) COA value at ASP ==
    /// `asp` need checking: O(log n).
    pub fn dominates_point(&self, asp: f64, coa: f64) -> bool {
        let at = self.lower_bound(asp);
        if at > 0 {
            // Strictly smaller ASP: dominating iff its COA is ≥ ours.
            let (_, c, _) = &self.entries[at - 1];
            if *c >= coa {
                return true;
            }
        }
        if let Some((a, c, _)) = self.entries.get(at) {
            if *a == asp && *c > coa {
                return true;
            }
        }
        false
    }

    /// Offers a candidate to the front. Returns `true` when the
    /// candidate survives (it is now a member, and any members it
    /// dominates have been removed); `false` when a member dominates it.
    pub fn insert(&mut self, asp: f64, coa: f64, payload: T) -> bool {
        if self.dominates_point(asp, coa) {
            return false;
        }
        let start = self.lower_bound(asp);
        // Members from `start` on have ASP ≥ ours; those with COA ≤ ours
        // are dominated (strict via the COA of exact objective ties being
        // equal — an equal point is never removed). They form a
        // contiguous run because COA is non-decreasing.
        let mut end = start;
        while let Some((a, c, _)) = self.entries.get(end) {
            let equal_point = *a == asp && *c == coa;
            if *c <= coa && !equal_point {
                end += 1;
            } else {
                break;
            }
        }
        // Exact ties keep insertion order: place behind existing equals.
        let mut at = end;
        while let Some((a, c, _)) = self.entries.get(at) {
            if *a == asp && *c == coa {
                at += 1;
            } else {
                break;
            }
        }
        self.entries.splice(start..end, std::iter::empty());
        self.entries.insert(at - (end - start), (asp, coa, payload));
        true
    }

    /// Consumes the front, returning `(asp, coa, payload)` members sorted
    /// by ascending ASP (exact ties in insertion order).
    pub fn into_entries(self) -> Vec<(f64, f64, T)> {
        self.entries
    }
}

/// The Pareto frontier of a batch of evaluations on (after-patch ASP ↓,
/// COA ↑): every design not [`dominates`]-dominated by another, sorted by
/// ascending ASP (ties in input order).
///
/// This is the batch decision function behind the design-space reports —
/// the paper's Figure 6 scatter picks from exactly this frontier.
pub fn pareto_frontier(evals: &[DesignEvaluation]) -> Vec<&DesignEvaluation> {
    pareto_frontier_batch(evals, 1)
}

/// [`pareto_frontier`], historically an O(n²) all-pairs dominance scan
/// spread over `threads` workers; now a single O(n log n) pass through
/// the incremental [`ParetoFront`] — same frontier, same order, for any
/// thread count (`threads` is kept for API compatibility and ignored).
pub fn pareto_frontier_batch(
    evals: &[DesignEvaluation],
    _threads: usize,
) -> Vec<&DesignEvaluation> {
    let mut front = ParetoFront::new();
    for (i, e) in evals.iter().enumerate() {
        front.insert(e.after.attack_success_probability, e.coa, i);
    }
    // Inserting in input order makes the front's tie order the input
    // order, so the sorted entries already match the former stable
    // sort-by-ASP of the surviving subsequence.
    front
        .into_entries()
        .into_iter()
        .map(|(_, _, i)| &evals[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::SecurityMetrics;

    fn metrics(asp: f64, noev: usize, noap: usize, noep: usize) -> SecurityMetrics {
        SecurityMetrics {
            attack_impact: 42.2,
            attack_success_probability: asp,
            exploitable_vulnerabilities: noev,
            attack_paths: noap,
            entry_points: noep,
            shortest_path_length: Some(3),
            mean_path_length: 3.0,
            risk: 1.0,
        }
    }

    fn eval(asp: f64, noev: usize, noap: usize, noep: usize, coa: f64) -> DesignEvaluation {
        DesignEvaluation {
            name: "d".into(),
            counts: vec![1, 1, 1, 1],
            before: metrics(1.0, 16, 2, 2),
            after: metrics(asp, noev, noap, noep),
            coa,
            availability: coa,
            expected_up: 4.0,
        }
    }

    #[test]
    fn scatter_bounds_both_must_hold() {
        let b = ScatterBounds {
            max_asp: 0.2,
            min_coa: 0.9962,
        };
        assert!(b.satisfied(&eval(0.15, 9, 2, 1, 0.9965)));
        assert!(!b.satisfied(&eval(0.25, 9, 2, 1, 0.9965))); // ASP too high
        assert!(!b.satisfied(&eval(0.15, 9, 2, 1, 0.9950))); // COA too low
    }

    #[test]
    fn bounds_are_inclusive() {
        let b = ScatterBounds {
            max_asp: 0.2,
            min_coa: 0.996,
        };
        assert!(b.satisfied(&eval(0.2, 9, 2, 1, 0.996)));
    }

    #[test]
    fn multi_bounds_every_metric_checked() {
        let b = MultiBounds {
            max_asp: 0.2,
            max_noev: 9,
            max_noap: 2,
            max_noep: 1,
            min_coa: 0.996,
        };
        assert!(b.satisfied(&eval(0.1, 9, 2, 1, 0.997)));
        assert!(!b.satisfied(&eval(0.1, 10, 2, 1, 0.997)));
        assert!(!b.satisfied(&eval(0.1, 9, 3, 1, 0.997)));
        assert!(!b.satisfied(&eval(0.1, 9, 2, 2, 0.997)));
        assert!(!b.satisfied(&eval(0.3, 9, 2, 1, 0.997)));
        assert!(!b.satisfied(&eval(0.1, 9, 2, 1, 0.99)));
    }

    #[test]
    fn pareto_frontier_drops_dominated_designs() {
        let evals = vec![
            eval(0.1, 7, 1, 1, 0.9960), // frontier: best ASP
            eval(0.3, 9, 2, 1, 0.9970), // frontier: best COA
            eval(0.3, 9, 2, 1, 0.9960), // dominated by the second
            eval(0.2, 9, 2, 1, 0.9965), // frontier: middle trade-off
        ];
        let frontier = pareto_frontier(&evals);
        assert_eq!(frontier.len(), 3);
        // Sorted by ascending ASP.
        assert!((frontier[0].after.attack_success_probability - 0.1).abs() < 1e-12);
        assert!((frontier[2].coa - 0.9970).abs() < 1e-12);
        // The parallel scan returns the identical frontier.
        let par = pareto_frontier_batch(&evals, 4);
        assert_eq!(frontier, par);
    }

    #[test]
    fn region_filters() {
        let evals = vec![
            eval(0.1, 7, 1, 1, 0.9965),
            eval(0.3, 9, 2, 1, 0.9968),
            eval(0.1, 9, 2, 1, 0.9950),
        ];
        let b = ScatterBounds {
            max_asp: 0.2,
            min_coa: 0.996,
        };
        let region = b.region(&evals);
        assert_eq!(region.len(), 1);
        assert_eq!(region[0].after.exploitable_vulnerabilities, 7);
    }
}
