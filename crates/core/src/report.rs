//! Markdown report generation: the whole evaluation of a design space in
//! one self-contained document (used by the `full_report` binary and
//! convenient for CI artifacts).

use std::fmt::Write as _;

use crate::charts::{radar_data, radar_series_table, scatter_data, scatter_table};
use crate::decision::{MultiBounds, ScatterBounds};
use crate::evaluation::{DesignEvaluation, Evaluator};
use crate::output::{Table, Value};
use crate::spec::Design;
use crate::EvalError;

/// Options for [`markdown_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOptions {
    /// Title of the report.
    pub title: String,
    /// Equation-(3) bounds to evaluate (label, bounds).
    pub scatter_bounds: Vec<(String, ScatterBounds)>,
    /// Equation-(4) bounds to evaluate (label, bounds).
    pub multi_bounds: Vec<(String, MultiBounds)>,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            title: "Redundancy-design evaluation".to_string(),
            scatter_bounds: Vec::new(),
            multi_bounds: Vec::new(),
        }
    }
}

/// Evaluates `designs` against `evaluator` and renders a self-contained
/// markdown report: per-design metric tables (before/after patch),
/// Figure-6/7-style data, and the decision-function regions.
///
/// # Errors
///
/// Propagates evaluation errors.
///
/// # Examples
///
/// ```
/// use redeval::case_study;
/// use redeval::report::{markdown_report, ReportOptions};
///
/// # fn main() -> Result<(), redeval::EvalError> {
/// let evaluator = case_study::evaluator()?;
/// let designs = case_study::five_designs();
/// let report = markdown_report(&evaluator, &designs, &ReportOptions::default())?;
/// assert!(report.contains("## Availability"));
/// # Ok(())
/// # }
/// ```
pub fn markdown_report(
    evaluator: &Evaluator,
    designs: &[Design],
    options: &ReportOptions,
) -> Result<String, EvalError> {
    let evals = evaluator.evaluate_all(designs)?;
    let mut out = String::new();
    let _ = writeln!(out, "# {}\n", options.title);
    let _ = writeln!(
        out,
        "{} designs over {} tiers; patch policy: {:?}.\n",
        evals.len(),
        evaluator.base().tiers().len(),
        evaluator.patch_policy()
    );

    let _ = writeln!(out, "## Security metrics\n");
    let mut security = Table::new(
        "security",
        [
            "design",
            "AIM pre",
            "ASP pre",
            "AIM post",
            "ASP post",
            "NoEV post",
            "NoAP post",
            "NoEP post",
        ],
    );
    for e in &evals {
        security.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.before.attack_impact),
            Value::from(e.before.attack_success_probability),
            Value::from(e.after.attack_impact),
            Value::from(e.after.attack_success_probability),
            Value::from(e.after.exploitable_vulnerabilities),
            Value::from(e.after.attack_paths),
            Value::from(e.after.entry_points),
        ]);
    }
    let _ = write!(out, "{}", security.to_markdown());

    let _ = writeln!(out, "\n## Availability\n");
    let mut availability = Table::new(
        "availability",
        ["design", "servers", "COA", "availability", "E[up]"],
    );
    for e in &evals {
        availability.add_row(vec![
            Value::from(e.name.as_str()),
            Value::from(e.total_servers()),
            Value::from(e.coa),
            Value::from(e.availability),
            Value::from(e.expected_up),
        ]);
    }
    let _ = write!(out, "{}", availability.to_markdown());

    let _ = writeln!(out, "\n## Scatter (ASP vs COA, after patch)\n");
    let _ = writeln!(out, "```");
    let _ = write!(
        out,
        "{}",
        scatter_table(&scatter_data(&evals, true)).to_text()
    );
    let _ = writeln!(out, "```");

    let _ = writeln!(out, "\n## Radar data (after patch)\n");
    let _ = writeln!(out, "```");
    let _ = write!(
        out,
        "{}",
        radar_series_table(&radar_data(&evals, true)).to_text()
    );
    let _ = writeln!(out, "```");

    if !options.scatter_bounds.is_empty() || !options.multi_bounds.is_empty() {
        let _ = writeln!(out, "\n## Decision regions\n");
        for (label, b) in &options.scatter_bounds {
            let names = region_names(b.region(&evals));
            let _ = writeln!(out, "* **{label}** (Eq. 3): {}", names);
        }
        for (label, b) in &options.multi_bounds {
            let names = region_names(b.region(&evals));
            let _ = writeln!(out, "* **{label}** (Eq. 4): {}", names);
        }
    }
    Ok(out)
}

fn region_names(region: Vec<&DesignEvaluation>) -> String {
    if region.is_empty() {
        "(none)".to_string()
    } else {
        region
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn report_contains_all_sections_and_designs() {
        let evaluator = case_study::evaluator().unwrap();
        let designs = case_study::five_designs();
        let options = ReportOptions {
            title: "T".into(),
            scatter_bounds: vec![(
                "region 1".into(),
                ScatterBounds {
                    max_asp: 0.2,
                    min_coa: 0.9962,
                },
            )],
            multi_bounds: vec![(
                "region 4.1".into(),
                MultiBounds {
                    max_asp: 0.2,
                    max_noev: 9,
                    max_noap: 2,
                    max_noep: 1,
                    min_coa: 0.9962,
                },
            )],
        };
        let md = markdown_report(&evaluator, &designs, &options).unwrap();
        for needle in [
            "# T",
            "## Security metrics",
            "## Availability",
            "## Scatter",
            "## Radar data",
            "## Decision regions",
            "2 DNS + 1 WEB + 1 APP + 1 DB",
            "region 1",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        // Region 1 of the paper appears with its two designs.
        assert!(md.contains("1 DNS + 1 WEB + 2 APP + 1 DB; 1 DNS + 1 WEB + 1 APP + 2 DB"));
    }

    #[test]
    fn empty_bounds_render_no_region_section() {
        let evaluator = case_study::evaluator().unwrap();
        let md = markdown_report(
            &evaluator,
            &case_study::five_designs()[..1],
            &ReportOptions::default(),
        )
        .unwrap();
        assert!(!md.contains("## Decision regions"));
    }
}
