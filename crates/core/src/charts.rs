//! Chart data for the paper's Figure 6 (scatter) and Figure 7 (radar),
//! with structured-table, CSV and ASCII renderers for the bench binaries.
//!
//! Tabular output goes through [`crate::output`] (the deterministic
//! serializers the golden corpus relies on); only the ASCII scatter plot
//! keeps its own renderer.

use std::fmt::Write as _;

use crate::evaluation::DesignEvaluation;
use crate::output::{Table, Value};

/// One point of the ASP-vs-COA scatter plot (Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// Design name.
    pub design: String,
    /// Attack success probability (x-axis).
    pub asp: f64,
    /// Capacity-oriented availability (y-axis).
    pub coa: f64,
}

/// Builds Figure-6 scatter data.
///
/// `after_patch` selects the 6(b) variant (after) or 6(a) (before).
pub fn scatter_data(evals: &[DesignEvaluation], after_patch: bool) -> Vec<ScatterPoint> {
    evals
        .iter()
        .map(|e| ScatterPoint {
            design: e.name.clone(),
            asp: if after_patch {
                e.after.attack_success_probability
            } else {
                e.before.attack_success_probability
            },
            coa: e.coa,
        })
        .collect()
}

/// Builds the structured `design,asp,coa` table of the scatter points.
pub fn scatter_table(points: &[ScatterPoint]) -> Table {
    let mut t = Table::new("scatter", ["design", "asp", "coa"]);
    for p in points {
        t.add_row(vec![
            Value::from(p.design.as_str()),
            Value::from(p.asp),
            Value::from(p.coa),
        ]);
    }
    t
}

/// Renders scatter points as CSV (`design,asp,coa`).
pub fn scatter_csv(points: &[ScatterPoint]) -> String {
    scatter_table(points).to_csv()
}

/// Renders a small ASCII scatter plot (ASP on x, COA on y), marking each
/// design with its 1-based index.
pub fn scatter_ascii(points: &[ScatterPoint], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 4, "canvas too small");
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        x_lo = x_lo.min(p.asp);
        x_hi = x_hi.max(p.asp);
        y_lo = y_lo.min(p.coa);
        y_hi = y_hi.max(p.coa);
    }
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    // Pad degenerate ranges.
    if x_hi - x_lo < 1e-12 {
        x_lo -= 0.05;
        x_hi += 0.05;
    }
    if y_hi - y_lo < 1e-12 {
        y_lo -= 0.0005;
        y_hi += 0.0005;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (i, p) in points.iter().enumerate() {
        let x = ((p.asp - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
        let y = ((p.coa - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
        let row = height - 1 - y;
        let ch = char::from_digit((i + 1) as u32 % 36, 36).unwrap_or('*');
        grid[row][x.min(width - 1)] = ch;
    }
    let mut out = String::new();
    let _ = writeln!(out, "COA {y_hi:.5}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(out, " ASP {x_lo:.3} .. {x_hi:.3}   (COA min {y_lo:.5})");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{}] {}  ASP={:.4} COA={:.5}",
            i + 1,
            p.design,
            p.asp,
            p.coa
        );
    }
    out
}

/// One radar-chart series: six axes as in the paper's Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarSeries {
    /// Design name.
    pub design: String,
    /// `NoEP`, `ASP`, `AIM`, `NoEV`, `NoAP`, `COA` — raw values.
    pub values: [f64; 6],
}

/// Axis labels of [`RadarSeries::values`], in order.
pub const RADAR_AXES: [&str; 6] = [
    "entry points",
    "attack success probability",
    "attack impact",
    "exploitable vulnerabilities",
    "attack paths",
    "capacity oriented availability",
];

/// Builds Figure-7 radar data (before or after patch).
pub fn radar_data(evals: &[DesignEvaluation], after_patch: bool) -> Vec<RadarSeries> {
    evals
        .iter()
        .map(|e| {
            let m = if after_patch { &e.after } else { &e.before };
            RadarSeries {
                design: e.name.clone(),
                values: [
                    m.entry_points as f64,
                    m.attack_success_probability,
                    m.attack_impact,
                    m.exploitable_vulnerabilities as f64,
                    m.attack_paths as f64,
                    e.coa,
                ],
            }
        })
        .collect()
}

/// Builds the structured radar table: one row per design, the six axes
/// as columns (counts as integers).
pub fn radar_series_table(series: &[RadarSeries]) -> Table {
    let mut t = Table::new(
        "radar",
        ["design", "noep", "asp", "aim", "noev", "noap", "coa"],
    );
    for s in series {
        t.add_row(vec![
            Value::from(s.design.as_str()),
            Value::Int(s.values[0] as i64),
            Value::from(s.values[1]),
            Value::from(s.values[2]),
            Value::Int(s.values[3] as i64),
            Value::Int(s.values[4] as i64),
            Value::from(s.values[5]),
        ]);
    }
    t
}

/// Renders radar series as CSV with one row per design.
pub fn radar_csv(series: &[RadarSeries]) -> String {
    radar_series_table(series).to_csv()
}

/// Renders radar series as an aligned text table (the terminal stand-in
/// for the paper's radar charts).
pub fn radar_table(series: &[RadarSeries]) -> String {
    radar_series_table(series).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::SecurityMetrics;

    fn eval(name: &str, asp_before: f64, asp_after: f64, coa: f64) -> DesignEvaluation {
        let m = |asp: f64| SecurityMetrics {
            attack_impact: 42.2,
            attack_success_probability: asp,
            exploitable_vulnerabilities: 9,
            attack_paths: 2,
            entry_points: 1,
            shortest_path_length: Some(3),
            mean_path_length: 3.0,
            risk: 4.0,
        };
        DesignEvaluation {
            name: name.into(),
            counts: vec![1, 1],
            before: m(asp_before),
            after: m(asp_after),
            coa,
            availability: coa,
            expected_up: 2.0,
        }
    }

    #[test]
    fn scatter_selects_patch_phase() {
        let evals = vec![eval("a", 1.0, 0.2, 0.996)];
        let before = scatter_data(&evals, false);
        let after = scatter_data(&evals, true);
        assert_eq!(before[0].asp, 1.0);
        assert_eq!(after[0].asp, 0.2);
        assert_eq!(after[0].coa, 0.996);
    }

    #[test]
    fn csv_well_formed() {
        let evals = vec![eval("a", 1.0, 0.2, 0.9961), eval("b", 1.0, 0.3, 0.9967)];
        let csv = scatter_csv(&scatter_data(&evals, true));
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "design,asp,coa");
        assert!(lines[1].starts_with("a,0.2"));
    }

    #[test]
    fn ascii_plot_contains_all_markers() {
        let evals = vec![
            eval("a", 1.0, 0.1, 0.9955),
            eval("b", 1.0, 0.2, 0.9960),
            eval("c", 1.0, 0.3, 0.9965),
        ];
        let plot = scatter_ascii(&scatter_data(&evals, true), 40, 10);
        for marker in ['1', '2', '3'] {
            assert!(plot.contains(marker), "missing marker {marker}\n{plot}");
        }
        assert!(plot.contains("ASP"));
    }

    #[test]
    fn ascii_plot_handles_degenerate_ranges() {
        let evals = vec![eval("a", 1.0, 0.2, 0.996), eval("b", 1.0, 0.2, 0.996)];
        let plot = scatter_ascii(&scatter_data(&evals, true), 20, 5);
        assert!(plot.contains("[2]"));
    }

    #[test]
    fn radar_axes_and_values_align() {
        let evals = vec![eval("a", 1.0, 0.25, 0.9964)];
        let series = radar_data(&evals, true);
        assert_eq!(series[0].values[1], 0.25);
        assert_eq!(series[0].values[5], 0.9964);
        assert_eq!(RADAR_AXES.len(), series[0].values.len());
        let table = radar_table(&series);
        assert!(table.contains("0.25"));
        let csv = radar_csv(&series);
        assert!(csv.contains("a,1,0.25,42.2,9,2,0.9964"));
    }
}
