//! Network specifications: the phase-1 inputs of the paper's approach.

use redeval_avail::{NetworkModel, ServerParams, Tier};
use redeval_harm::{AttackGraph, AttackTree, Harm};
use redeval_srn::SrnError;

use crate::error::SpecIssue;
use crate::EvalError;

/// One tier of identical servers (the paper uses identical redundant
/// servers throughout).
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Tier name (`"dns"`, `"web"`, …).
    pub name: String,
    /// Number of redundant servers in this tier.
    pub count: u32,
    /// Failure/recovery/patch rates of each server (Table IV).
    pub params: ServerParams,
    /// The per-server attack tree (Table I); `None` when the servers carry
    /// no exploitable vulnerabilities.
    pub tree: Option<AttackTree>,
    /// Whether the external attacker reaches this tier directly.
    pub entry: bool,
    /// Whether compromising a server of this tier achieves the attack goal.
    pub target: bool,
}

/// A named redundancy design: per-tier server counts applied to a base
/// specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Human-readable name, e.g. `"2 DNS + 1 WEB + 1 APP + 1 DB"`.
    pub name: String,
    /// Per-tier counts, aligned with the base spec's tiers.
    pub counts: Vec<u32>,
}

impl Design {
    /// Creates a design.
    pub fn new(name: impl Into<String>, counts: Vec<u32>) -> Self {
        Design {
            name: name.into(),
            counts,
        }
    }

    /// The conventional name `"a DNS + b WEB + c APP + d DB"` style, from
    /// tier names.
    pub fn conventional_name(tier_names: &[&str], counts: &[u32]) -> String {
        tier_names
            .iter()
            .zip(counts)
            .map(|(n, c)| format!("{c} {}", n.to_uppercase()))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// A complete enterprise-network specification: tiers plus tier-level
/// reachability.
///
/// # Examples
///
/// ```
/// use redeval::{NetworkSpec, TierSpec, ServerParams, AttackTree, Vulnerability};
///
/// let spec = NetworkSpec::new(
///     vec![
///         TierSpec {
///             name: "web".into(),
///             count: 2,
///             params: ServerParams::builder("web").build(),
///             tree: Some(AttackTree::leaf(Vulnerability::new("CVE-A", 10.0, 1.0))),
///             entry: true,
///             target: false,
///         },
///         TierSpec {
///             name: "db".into(),
///             count: 1,
///             params: ServerParams::builder("db").build(),
///             tree: Some(AttackTree::leaf(Vulnerability::new("CVE-B", 10.0, 0.5))),
///             entry: false,
///             target: true,
///         },
///     ],
///     vec![(0, 1)],
/// );
/// let harm = spec.build_harm();
/// assert_eq!(harm.graph().host_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    tiers: Vec<TierSpec>,
    /// Tier-level reachability `(from, to)`; expanded to full bipartite
    /// host edges.
    edges: Vec<(usize, usize)>,
}

impl NetworkSpec {
    /// Creates a specification, validating its structure.
    ///
    /// This is the fallible front door used by everything that accepts
    /// *data* (scenario files, future config surfaces); [`new`](Self::new)
    /// stays as a thin panicking wrapper for programmatic construction in
    /// tests and examples.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidSpec`] when `tiers` is empty, an edge index is
    /// out of range, no tier is marked `target`, or no tier is marked
    /// `entry`.
    pub fn try_new(tiers: Vec<TierSpec>, edges: Vec<(usize, usize)>) -> Result<Self, EvalError> {
        if tiers.is_empty() {
            return Err(SpecIssue::EmptyTiers.into());
        }
        for &(a, b) in &edges {
            if a >= tiers.len() || b >= tiers.len() {
                return Err(SpecIssue::EdgeOutOfRange {
                    from: a,
                    to: b,
                    tiers: tiers.len(),
                }
                .into());
            }
            // The attack graph asserts against self edges; catch them
            // here so data-driven callers get an error, not a panic.
            if a == b {
                return Err(SpecIssue::SelfEdge { tier: a }.into());
            }
        }
        if !tiers.iter().any(|t| t.target) {
            return Err(SpecIssue::NoTargetTier.into());
        }
        if !tiers.iter().any(|t| t.entry) {
            return Err(SpecIssue::NoEntryTier.into());
        }
        Ok(NetworkSpec { tiers, edges })
    }

    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty, an edge index is out of range, no
    /// tier is marked `target`, or no tier is marked `entry` — the
    /// validation of [`try_new`](Self::try_new), with the [`SpecIssue`]
    /// message as the panic payload.
    pub fn new(tiers: Vec<TierSpec>, edges: Vec<(usize, usize)>) -> Self {
        match Self::try_new(tiers, edges) {
            Ok(spec) => spec,
            Err(EvalError::InvalidSpec(issue)) => panic!("{issue}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// The tiers.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers
    }

    /// Tier-level edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Total servers over all tiers.
    pub fn total_servers(&self) -> u32 {
        self.tiers.iter().map(|t| t.count).sum()
    }

    /// A copy with different per-tier counts (a redundancy design applied).
    ///
    /// # Errors
    ///
    /// [`EvalError::CountMismatch`]/[`EvalError::ZeroServers`] for invalid
    /// designs.
    pub fn with_counts(&self, counts: &[u32]) -> Result<NetworkSpec, EvalError> {
        if counts.len() != self.tiers.len() {
            return Err(EvalError::CountMismatch {
                expected: self.tiers.len(),
                got: counts.len(),
            });
        }
        let mut out = self.clone();
        for (t, &c) in out.tiers.iter_mut().zip(counts) {
            if c == 0 {
                return Err(EvalError::ZeroServers {
                    tier: t.name.clone(),
                });
            }
            t.count = c;
        }
        Ok(out)
    }

    /// Indices of the tiers marked `entry`, in tier order — the
    /// coordinate system of attacker entry masks
    /// ([`with_entry_tiers`](Self::with_entry_tiers)).
    pub fn entry_tiers(&self) -> Vec<usize> {
        self.tiers
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.entry.then_some(i))
            .collect()
    }

    /// A copy keeping only the entry tiers selected by `mask` (one slot
    /// per entry tier, in [`entry_tiers`](Self::entry_tiers) order);
    /// everything else — counts, params, trees, targets, edges — is
    /// untouched.
    ///
    /// The HARM built from the masked spec equals the full spec's HARM
    /// with the corresponding host-level entry mask applied
    /// (`Harm::with_entry_mask`): `build_harm` adds hosts for every tier
    /// regardless of entry flags, so only the entry list differs.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidSpec`] ([`SpecIssue::NoEntryTier`]) when the
    /// mask deselects every entry tier.
    ///
    /// # Panics
    ///
    /// Panics when `mask.len()` differs from the number of entry tiers.
    pub fn with_entry_tiers(&self, mask: &[bool]) -> Result<NetworkSpec, EvalError> {
        let out = self.clone();
        let (mut tiers, edges) = (out.tiers, out.edges);
        let mut slots = mask.iter();
        for t in &mut tiers {
            if t.entry {
                let keep = slots.next().expect("one mask slot per entry tier required");
                t.entry = *keep;
            }
        }
        assert!(
            slots.next().is_none(),
            "one mask slot per entry tier required"
        );
        Self::try_new(tiers, edges)
    }

    /// Builds the two-layer HARM of this network: each tier expands to
    /// `count` identical hosts named `name1, name2, …`; tier edges expand
    /// to full bipartite host edges; all servers of target tiers become
    /// attack targets.
    pub fn build_harm(&self) -> Harm {
        let mut g = AttackGraph::new();
        let mut hosts: Vec<Vec<redeval_harm::HostId>> = Vec::with_capacity(self.tiers.len());
        let mut trees = Vec::new();
        for t in &self.tiers {
            let mut tier_hosts = Vec::with_capacity(t.count as usize);
            for i in 1..=t.count {
                let h = g.add_host(format!("{}{}", t.name, i));
                tier_hosts.push(h);
                trees.push(t.tree.clone());
            }
            hosts.push(tier_hosts);
        }
        for (ti, t) in self.tiers.iter().enumerate() {
            if t.entry {
                for &h in &hosts[ti] {
                    g.add_entry(h);
                }
            }
        }
        for &(a, b) in &self.edges {
            for &ha in &hosts[a] {
                for &hb in &hosts[b] {
                    g.add_edge(ha, hb);
                }
            }
        }
        let mut targets = Vec::new();
        for (ti, t) in self.tiers.iter().enumerate() {
            if t.target {
                targets.extend_from_slice(&hosts[ti]);
            }
        }
        Harm::new(g, trees, targets)
    }

    /// Solves each tier's lower-layer server SRN and aggregates it
    /// (Equations (1),(2)). Count-independent: do this once per base spec.
    ///
    /// # Errors
    ///
    /// Propagates SRN errors.
    pub fn tier_analyses(&self) -> Result<Vec<redeval_avail::ServerAnalysis>, SrnError> {
        self.tiers.iter().map(|t| t.params.analyze()).collect()
    }

    /// Builds the upper-layer availability model from pre-computed tier
    /// analyses.
    ///
    /// Accepts any analysis container that borrows a
    /// [`ServerAnalysis`](redeval_avail::ServerAnalysis) — plain values or
    /// the shared `Arc`s handed out by
    /// [`exec::AnalysisCache`](crate::exec::AnalysisCache).
    ///
    /// # Panics
    ///
    /// Panics when `analyses.len()` differs from the tier count.
    pub fn network_model<A>(&self, analyses: &[A]) -> NetworkModel
    where
        A: std::borrow::Borrow<redeval_avail::ServerAnalysis>,
    {
        assert_eq!(analyses.len(), self.tiers.len(), "one analysis per tier");
        NetworkModel::new(
            self.tiers
                .iter()
                .zip(analyses)
                .map(|(t, a)| Tier::new(t.name.clone(), t.count, a.borrow().rates()))
                .collect(),
        )
    }

    /// A copy with every tier's patch interval replaced (the patch-window
    /// sweeps of the paper's Section V).
    pub fn with_patch_interval(&self, interval: redeval_avail::Durations) -> NetworkSpec {
        let mut out = self.clone();
        for t in &mut out.tiers {
            t.params.patch_interval = interval;
        }
        out
    }

    /// Enumerates all designs whose per-tier counts range over
    /// `1..=max_redundancy`, in lexicographic order (the design-space
    /// search of the `design_space` bench binary).
    pub fn enumerate_designs(&self, max_redundancy: u32) -> Vec<Design> {
        let names: Vec<&str> = self.tiers.iter().map(|t| t.name.as_str()).collect();
        let k = self.tiers.len();
        let mut counts = vec![1u32; k];
        let mut out = Vec::new();
        loop {
            out.push(Design::new(
                Design::conventional_name(&names, &counts),
                counts.clone(),
            ));
            // Mixed-radix increment over 1..=max.
            let mut i = 0;
            loop {
                if i == k {
                    return out;
                }
                if counts[i] < max_redundancy {
                    counts[i] += 1;
                    break;
                }
                counts[i] = 1;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redeval_harm::{MetricsConfig, Vulnerability};

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec::new(
            vec![
                TierSpec {
                    name: "web".into(),
                    count: 2,
                    params: ServerParams::builder("web").build(),
                    tree: Some(AttackTree::leaf(Vulnerability::new("a", 10.0, 0.5))),
                    entry: true,
                    target: false,
                },
                TierSpec {
                    name: "db".into(),
                    count: 1,
                    params: ServerParams::builder("db").build(),
                    tree: Some(AttackTree::leaf(Vulnerability::new("b", 10.0, 0.5))),
                    entry: false,
                    target: true,
                },
            ],
            vec![(0, 1)],
        )
    }

    #[test]
    fn harm_expansion_counts_hosts_and_paths() {
        let harm = tiny_spec().build_harm();
        assert_eq!(harm.graph().host_count(), 3);
        let m = harm.metrics(&MetricsConfig::default());
        assert_eq!(m.attack_paths, 2);
        assert_eq!(m.entry_points, 2);
        assert_eq!(m.exploitable_vulnerabilities, 3);
    }

    #[test]
    fn with_counts_validates() {
        let spec = tiny_spec();
        assert!(matches!(
            spec.with_counts(&[1]),
            Err(EvalError::CountMismatch { .. })
        ));
        assert!(matches!(
            spec.with_counts(&[1, 0]),
            Err(EvalError::ZeroServers { .. })
        ));
        let d = spec.with_counts(&[3, 2]).unwrap();
        assert_eq!(d.total_servers(), 5);
    }

    #[test]
    fn enumerate_designs_covers_space() {
        let designs = tiny_spec().enumerate_designs(3);
        assert_eq!(designs.len(), 9);
        assert!(designs.iter().any(|d| d.counts == vec![3, 3]));
        // Names are conventional.
        assert!(designs[0].name.contains("WEB"));
    }

    #[test]
    fn entry_tier_masking_matches_host_level_masking() {
        // Two entry tiers around a target: masking at the tier level and
        // masking the built HARM's entries must agree exactly.
        let spec = NetworkSpec::new(
            vec![
                TierSpec {
                    name: "dns".into(),
                    count: 1,
                    params: ServerParams::builder("dns").build(),
                    tree: Some(AttackTree::leaf(Vulnerability::new("a", 10.0, 0.5))),
                    entry: true,
                    target: false,
                },
                TierSpec {
                    name: "web".into(),
                    count: 2,
                    params: ServerParams::builder("web").build(),
                    tree: Some(AttackTree::leaf(Vulnerability::new("b", 10.0, 0.5))),
                    entry: true,
                    target: false,
                },
                TierSpec {
                    name: "db".into(),
                    count: 1,
                    params: ServerParams::builder("db").build(),
                    tree: Some(AttackTree::leaf(Vulnerability::new("c", 10.0, 0.5))),
                    entry: false,
                    target: true,
                },
            ],
            vec![(0, 2), (1, 2)],
        );
        assert_eq!(spec.entry_tiers(), vec![0, 1]);
        let config = MetricsConfig::default();
        let full = spec.build_harm();
        // Tier mask [false, true] → host mask [dns1:false, web1..2:true].
        let masked_spec = spec.with_entry_tiers(&[false, true]).unwrap();
        let a = masked_spec.build_harm().metrics(&config);
        let b = full.with_entry_mask(&[false, true, true]).metrics(&config);
        assert_eq!(a, b);
        assert_eq!(a.attack_paths, 2);
        // Deselecting everything is a structural error, not a panic.
        assert!(matches!(
            spec.with_entry_tiers(&[false, false]),
            Err(EvalError::InvalidSpec(crate::error::SpecIssue::NoEntryTier))
        ));
    }

    #[test]
    #[should_panic(expected = "one mask slot per entry tier")]
    fn entry_tier_mask_length_mismatch_panics() {
        let _ = tiny_spec().with_entry_tiers(&[true, false]);
    }

    #[test]
    fn conventional_name_format() {
        let n = Design::conventional_name(&["dns", "web"], &[2, 1]);
        assert_eq!(n, "2 DNS + 1 WEB");
    }

    #[test]
    #[should_panic(expected = "no target tier")]
    fn spec_requires_target() {
        let mut tiers = tiny_spec().tiers().to_vec();
        tiers[1].target = false;
        let _ = NetworkSpec::new(tiers, vec![(0, 1)]);
    }

    #[test]
    fn try_new_reports_each_structural_issue() {
        use crate::error::SpecIssue;
        let ok = tiny_spec();
        assert!(matches!(
            NetworkSpec::try_new(vec![], vec![]),
            Err(EvalError::InvalidSpec(SpecIssue::EmptyTiers))
        ));
        assert!(matches!(
            NetworkSpec::try_new(ok.tiers().to_vec(), vec![(0, 2)]),
            Err(EvalError::InvalidSpec(SpecIssue::EdgeOutOfRange {
                from: 0,
                to: 2,
                tiers: 2
            }))
        ));
        let mut no_target = ok.tiers().to_vec();
        no_target[1].target = false;
        assert!(matches!(
            NetworkSpec::try_new(no_target, vec![(0, 1)]),
            Err(EvalError::InvalidSpec(SpecIssue::NoTargetTier))
        ));
        let mut no_entry = ok.tiers().to_vec();
        no_entry[0].entry = false;
        assert!(matches!(
            NetworkSpec::try_new(no_entry, vec![(0, 1)]),
            Err(EvalError::InvalidSpec(SpecIssue::NoEntryTier))
        ));
        // Self edges would panic later inside the attack graph.
        assert!(matches!(
            NetworkSpec::try_new(ok.tiers().to_vec(), vec![(0, 1), (1, 1)]),
            Err(EvalError::InvalidSpec(SpecIssue::SelfEdge { tier: 1 }))
        ));
        // And the valid shape goes through.
        let spec = NetworkSpec::try_new(ok.tiers().to_vec(), ok.edges().to_vec()).unwrap();
        assert_eq!(spec.total_servers(), 3);
    }
}
