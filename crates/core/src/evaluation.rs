//! Phase 2+3: model construction and combined evaluation of one design.

use redeval_avail::ServerAnalysis;
use redeval_harm::{MetricsConfig, SecurityMetrics, Vulnerability};

use crate::spec::NetworkSpec;
use crate::EvalError;

/// Which vulnerabilities the patch round removes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatchPolicy {
    /// Patch nothing (the "before" model).
    None,
    /// Patch vulnerabilities with CVSS base score strictly above the
    /// threshold — the paper uses `CriticalOnly(8.0)`.
    CriticalOnly(f64),
    /// Patch everything.
    All,
}

impl PatchPolicy {
    /// Whether this policy patches the given vulnerability.
    pub fn patches(&self, v: &Vulnerability) -> bool {
        match self {
            PatchPolicy::None => false,
            PatchPolicy::CriticalOnly(t) => v.is_critical(*t),
            PatchPolicy::All => true,
        }
    }
}

impl std::fmt::Display for PatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchPolicy::None => write!(f, "no patch"),
            PatchPolicy::CriticalOnly(t) => write!(f, "critical>{t}"),
            PatchPolicy::All => write!(f, "patch all"),
        }
    }
}

/// Error parsing a [`PatchPolicy`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The rejected spelling may come straight off the wire (scenario
        // files, `/v1/sweep` bodies), so the echo is snippet-capped: a
        // kilobyte of junk must never bounce back whole.
        write!(
            f,
            "unknown patch policy `{}` (expected `none`, `all` or `critical>T` \
             with a CVSS threshold T)",
            crate::output::snippet(&self.input)
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for PatchPolicy {
    type Err = ParsePolicyError;

    /// Parses the [`Display`](std::fmt::Display) form back (`no patch`,
    /// `critical>8`, `patch all`) plus the terser spellings `none` and
    /// `all` used by scenario files and the CLI `--policy` flag. The
    /// threshold accepts any finite `f64` in `0.0..=10.0`; because
    /// `Display` prints the shortest round-trip form, `parse ∘ to_string`
    /// is the identity on every policy value.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError {
            input: s.to_string(),
        };
        match s.trim() {
            "none" | "no patch" => Ok(PatchPolicy::None),
            "all" | "patch all" => Ok(PatchPolicy::All),
            other => {
                let t = other
                    .strip_prefix("critical>")
                    .ok_or_else(err)?
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| err())?;
                if !t.is_finite() || !(0.0..=10.0).contains(&t) {
                    return Err(err());
                }
                Ok(PatchPolicy::CriticalOnly(t))
            }
        }
    }
}

/// The complete evaluation of one redundancy design: the paper's security
/// metrics before and after the patch, plus the availability measures.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEvaluation {
    /// Design name.
    pub name: String,
    /// Per-tier server counts.
    pub counts: Vec<u32>,
    /// Security metrics of the unpatched network.
    pub before: SecurityMetrics,
    /// Security metrics after the patch round.
    pub after: SecurityMetrics,
    /// Capacity-oriented availability under the patch schedule.
    pub coa: f64,
    /// Classical availability (every tier has ≥ 1 server up).
    pub availability: f64,
    /// Expected number of running servers.
    pub expected_up: f64,
}

impl DesignEvaluation {
    /// Total servers in the design.
    pub fn total_servers(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Evaluates designs against a base specification, caching the expensive
/// per-tier lower-layer SRN solves (they are count-independent).
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Evaluator {
    base: NetworkSpec,
    analyses: Vec<ServerAnalysis>,
    metrics_config: MetricsConfig,
    patch: PatchPolicy,
}

impl Evaluator {
    /// Builds an evaluator: solves each tier's server SRN once.
    ///
    /// Uses the paper's defaults: critical-only patching at base score 8.0
    /// and the default ASP aggregation.
    ///
    /// # Errors
    ///
    /// Propagates SRN errors from the lower-layer solves.
    pub fn new(base: NetworkSpec) -> Result<Self, EvalError> {
        Self::with_options(
            base,
            MetricsConfig::default(),
            PatchPolicy::CriticalOnly(8.0),
        )
    }

    /// Builds an evaluator with explicit metric and patch configuration.
    ///
    /// # Errors
    ///
    /// Propagates SRN errors from the lower-layer solves.
    pub fn with_options(
        base: NetworkSpec,
        metrics_config: MetricsConfig,
        patch: PatchPolicy,
    ) -> Result<Self, EvalError> {
        let analyses = base.tier_analyses()?;
        Ok(Evaluator {
            base,
            analyses,
            metrics_config,
            patch,
        })
    }

    /// Builds an evaluator from a declarative scenario document: the
    /// document's network, metric configuration and **first** patch
    /// policy (documents carry an ordered policy list; sweeps over all of
    /// them go through [`Sweep::from_scenario`](crate::Sweep::from_scenario)).
    ///
    /// # Errors
    ///
    /// [`EvalError::Scenario`]/[`EvalError::InvalidSpec`] when the
    /// document fails validation, plus the usual SRN solve errors.
    pub fn from_scenario(doc: &crate::scenario::ScenarioDoc) -> Result<Self, EvalError> {
        let spec = doc.to_spec()?;
        Self::with_options(spec, doc.metrics, doc.first_policy())
    }

    /// Builds an evaluator whose per-tier solves are resolved through a
    /// shared [`exec::AnalysisCache`](crate::exec::AnalysisCache), so
    /// evaluators in one batch dedupe identical tier solves instead of
    /// each re-solving them. (The small per-tier summaries are cloned out
    /// of the cache; it is the SRN *solve* that is deduped.)
    ///
    /// # Errors
    ///
    /// Propagates SRN errors from the lower-layer solves.
    pub fn with_cache(
        base: NetworkSpec,
        metrics_config: MetricsConfig,
        patch: PatchPolicy,
        cache: &crate::exec::AnalysisCache,
    ) -> Result<Self, EvalError> {
        let analyses = cache
            .analyses_for(&base)?
            .iter()
            .map(|a| a.as_ref().clone())
            .collect();
        Ok(Evaluator {
            base,
            analyses,
            metrics_config,
            patch,
        })
    }

    /// The base specification.
    pub fn base(&self) -> &NetworkSpec {
        &self.base
    }

    /// The cached per-tier analyses (aggregated rates etc.).
    pub fn tier_analyses(&self) -> &[ServerAnalysis] {
        &self.analyses
    }

    /// The active patch policy.
    pub fn patch_policy(&self) -> PatchPolicy {
        self.patch
    }

    /// The active metrics configuration.
    pub fn metrics_config(&self) -> &MetricsConfig {
        &self.metrics_config
    }

    /// Evaluates one design (per-tier counts over the base spec).
    ///
    /// # Errors
    ///
    /// Returns count-validation errors and solver errors.
    pub fn evaluate(&self, name: &str, counts: &[u32]) -> Result<DesignEvaluation, EvalError> {
        let spec = self.base.with_counts(counts)?;

        // Security: HARM before and after patch.
        let harm = spec.build_harm();
        let before = harm.metrics(&self.metrics_config);
        let patch = self.patch;
        let after = harm
            .patched(&move |v| patch.patches(v))
            .metrics(&self.metrics_config);

        // Availability: upper-layer model from cached aggregations.
        let model = spec.network_model(&self.analyses);
        let coa = model.coa()?;
        let availability = model.availability()?;
        let expected_up = model.expected_up_servers()?;

        Ok(DesignEvaluation {
            name: name.to_string(),
            counts: counts.to_vec(),
            before,
            after,
            coa,
            availability,
            expected_up,
        })
    }

    /// Evaluates a list of designs.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid design.
    pub fn evaluate_all(
        &self,
        designs: &[crate::spec::Design],
    ) -> Result<Vec<DesignEvaluation>, EvalError> {
        designs
            .iter()
            .map(|d| self.evaluate(&d.name, &d.counts))
            .collect()
    }

    /// Evaluates a list of designs on up to `threads` worker threads.
    ///
    /// Results come back in design order and are bitwise-identical to
    /// [`Evaluator::evaluate_all`] — see
    /// [`exec::run_batch`](crate::exec::run_batch) for the threading
    /// model.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest invalid design.
    pub fn evaluate_batch(
        &self,
        designs: &[crate::spec::Design],
        threads: usize,
    ) -> Result<Vec<DesignEvaluation>, EvalError> {
        let results = crate::exec::run_batch(designs.len(), threads, |i| {
            self.evaluate(&designs[i].name, &designs[i].counts)
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TierSpec;
    use redeval_avail::ServerParams;
    use redeval_harm::AttackTree;

    fn spec() -> NetworkSpec {
        let leaf = |id: &str, imp, p| Some(AttackTree::leaf(Vulnerability::new(id, imp, p)));
        NetworkSpec::new(
            vec![
                TierSpec {
                    name: "web".into(),
                    count: 1,
                    params: ServerParams::builder("web").build(),
                    tree: leaf("critical", 10.0, 1.0),
                    entry: true,
                    target: false,
                },
                TierSpec {
                    name: "db".into(),
                    count: 1,
                    params: ServerParams::builder("db").build(),
                    tree: leaf("minor", 2.9, 0.86),
                    entry: false,
                    target: true,
                },
            ],
            vec![(0, 1)],
        )
    }

    #[test]
    fn patch_policy_display_round_trips_through_from_str() {
        // Every variant, including thresholds that stress float printing.
        let policies = [
            PatchPolicy::None,
            PatchPolicy::All,
            PatchPolicy::CriticalOnly(8.0),
            PatchPolicy::CriticalOnly(0.0),
            PatchPolicy::CriticalOnly(10.0),
            PatchPolicy::CriticalOnly(7.1),
            PatchPolicy::CriticalOnly(9.55),
            PatchPolicy::CriticalOnly(1.0 / 3.0),
        ];
        for p in policies {
            let s = p.to_string();
            let back: PatchPolicy = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, p, "round-trip through `{s}`");
            if let (PatchPolicy::CriticalOnly(t), PatchPolicy::CriticalOnly(b)) = (p, back) {
                assert_eq!(t.to_bits(), b.to_bits(), "threshold bits via `{s}`");
            }
        }
    }

    #[test]
    fn patch_policy_from_str_accepts_aliases_and_rejects_junk() {
        assert_eq!("none".parse::<PatchPolicy>().unwrap(), PatchPolicy::None);
        assert_eq!("all".parse::<PatchPolicy>().unwrap(), PatchPolicy::All);
        assert_eq!(
            " critical>8 ".parse::<PatchPolicy>().unwrap(),
            PatchPolicy::CriticalOnly(8.0)
        );
        for bad in [
            "",
            "patch",
            "critical",
            "critical>",
            "critical>eight",
            "critical>-1",
            "critical>10.5",
            "critical>NaN",
            "critical>inf",
            "ALL",
        ] {
            let e = bad.parse::<PatchPolicy>();
            assert!(e.is_err(), "accepted `{bad}`");
        }
        let msg = "bogus".parse::<PatchPolicy>().unwrap_err().to_string();
        assert!(msg.contains("bogus") && msg.contains("critical>T"));
        // Wire-sized junk is snippet-capped, never echoed whole.
        let huge = "z".repeat(100_000);
        let msg = huge.parse::<PatchPolicy>().unwrap_err().to_string();
        assert!(msg.len() < 300, "echoed {} bytes", msg.len());
        assert!(!msg.contains(&huge[..100]));
    }

    #[test]
    fn patch_policy_predicates() {
        let v_crit = Vulnerability::new("c", 10.0, 1.0);
        let v_minor = Vulnerability::new("m", 2.9, 0.86);
        assert!(!PatchPolicy::None.patches(&v_crit));
        assert!(PatchPolicy::All.patches(&v_minor));
        assert!(PatchPolicy::CriticalOnly(8.0).patches(&v_crit));
        assert!(!PatchPolicy::CriticalOnly(8.0).patches(&v_minor));
    }

    #[test]
    fn evaluation_before_and_after() {
        let ev = Evaluator::new(spec()).unwrap();
        let e = ev.evaluate("base", &[1, 1]).unwrap();
        // Before: one path web->db.
        assert_eq!(e.before.attack_paths, 1);
        assert!((e.before.attack_impact - 12.9).abs() < 1e-9);
        // After: web's critical vuln is patched, path dies.
        assert_eq!(e.after.attack_paths, 0);
        assert_eq!(e.after.exploitable_vulnerabilities, 1);
        assert!(e.coa > 0.99 && e.coa < 1.0);
        assert!(e.availability >= e.coa);
        assert_eq!(e.total_servers(), 2);
    }

    #[test]
    fn redundancy_raises_coa_and_attack_surface() {
        let ev = Evaluator::new(spec()).unwrap();
        let base = ev.evaluate("base", &[1, 1]).unwrap();
        let red = ev.evaluate("2web", &[2, 1]).unwrap();
        assert!(red.coa > base.coa);
        assert!(red.before.exploitable_vulnerabilities > base.before.exploitable_vulnerabilities);
        assert!(red.before.attack_paths > base.before.attack_paths);
    }

    #[test]
    fn patch_all_removes_everything() {
        let ev =
            Evaluator::with_options(spec(), MetricsConfig::default(), PatchPolicy::All).unwrap();
        let e = ev.evaluate("x", &[1, 1]).unwrap();
        assert_eq!(e.after.exploitable_vulnerabilities, 0);
        assert_eq!(e.after.entry_points, 0);
    }

    #[test]
    fn patch_none_changes_nothing() {
        let ev =
            Evaluator::with_options(spec(), MetricsConfig::default(), PatchPolicy::None).unwrap();
        let e = ev.evaluate("x", &[1, 1]).unwrap();
        assert_eq!(e.before, e.after);
    }

    #[test]
    fn evaluate_all_preserves_order() {
        let ev = Evaluator::new(spec()).unwrap();
        let designs = vec![
            crate::spec::Design::new("a", vec![1, 1]),
            crate::spec::Design::new("b", vec![2, 1]),
        ];
        let evals = ev.evaluate_all(&designs).unwrap();
        assert_eq!(evals[0].name, "a");
        assert_eq!(evals[1].name, "b");
    }

    #[test]
    fn with_cache_dedupes_solves_and_matches_with_options() {
        let cache = crate::exec::AnalysisCache::new();
        let plain =
            Evaluator::with_options(spec(), MetricsConfig::default(), PatchPolicy::All).unwrap();
        let cached =
            Evaluator::with_cache(spec(), MetricsConfig::default(), PatchPolicy::All, &cache)
                .unwrap();
        // Both tiers carry identical default parameters, so the
        // content-keyed cache solves once and relabels for the second.
        assert_eq!(cache.solves(), 1);
        assert_eq!(cache.relabels(), 1);
        let second =
            Evaluator::with_cache(spec(), MetricsConfig::default(), PatchPolicy::None, &cache)
                .unwrap();
        assert_eq!(cache.solves(), 1); // second evaluator re-solves nothing
        assert_eq!(cache.hits(), 3); // db relabel + both tiers of the second
                                     // Identical numbers through either constructor.
        assert_eq!(
            plain.evaluate("x", &[2, 1]).unwrap(),
            cached.evaluate("x", &[2, 1]).unwrap()
        );
        let e = second.evaluate("x", &[2, 1]).unwrap();
        assert_eq!(e.before, e.after);
    }

    #[test]
    fn evaluate_batch_matches_evaluate_all() {
        let ev = Evaluator::new(spec()).unwrap();
        let designs = vec![
            crate::spec::Design::new("a", vec![1, 1]),
            crate::spec::Design::new("b", vec![2, 1]),
            crate::spec::Design::new("c", vec![3, 2]),
        ];
        let all = ev.evaluate_all(&designs).unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(ev.evaluate_batch(&designs, threads).unwrap(), all);
        }
        // Errors surface in design order.
        let bad = vec![
            crate::spec::Design::new("ok", vec![1, 1]),
            crate::spec::Design::new("zero", vec![0, 1]),
            crate::spec::Design::new("mismatch", vec![1]),
        ];
        assert!(matches!(
            ev.evaluate_batch(&bad, 4),
            Err(EvalError::ZeroServers { .. })
        ));
    }

    #[test]
    fn invalid_design_is_reported() {
        let ev = Evaluator::new(spec()).unwrap();
        assert!(matches!(
            ev.evaluate("bad", &[1]),
            Err(EvalError::CountMismatch { .. })
        ));
    }
}
