//! Pruned design-space search: deterministic branch-and-bound over the
//! per-tier redundancy-count space, replacing exhaustive grid
//! materialization for the paper's decision analysis (Eqs. (3)–(4)).
//!
//! # The search
//!
//! The candidate space is the box `[1, max_redundancy]^T` of per-tier
//! counts crossed with the patch-policy list — the same space
//! [`Sweep::full_design_space`](crate::exec::Sweep::full_design_space)
//! materializes eagerly, which caps it at grids the executor can hold.
//! The optimizer instead subdivides the box and prunes sub-boxes whose
//! *optimistic* objective point is already dominated by the incremental
//! Pareto front ([`ParetoFront`]) on
//! (after-patch ASP ↓, COA ↑), so only candidates near the frontier are
//! ever evaluated.
//!
//! # Why the bounds are sound (DESIGN.md §11)
//!
//! * **ASP lower bound** — adding a host to a tier can only add attack
//!   paths (an unexploitable tier adds none), and every ASP aggregation
//!   is monotone in the path set, so per policy `ASP(c) ≥ ASP(lo)` for
//!   every `c` in a box `[lo, hi]`. (This holds while path enumeration
//!   stays under `MetricsConfig::max_paths`; past the cap metrics
//!   saturate and the monotone argument no longer applies.) A child box
//!   inherits its parent's corner bound — `parent.lo ≤ child.lo`
//!   componentwise — so a child can be pruned *before* its own corner
//!   is ever evaluated.
//! * **COA upper bound** — raw COA is *not* monotone in counts (it is
//!   normalized by the total server count), so no corner evaluation
//!   bounds it. Instead the bound comes from the exact factored form of
//!   the independent-tier availability model:
//!   `COA(c) · Σ_t c_t = Σ_t m_t(c_t) · Π_{s≠t} p_s(c_s)` where
//!   `p_t(c) = P(up_t ≥ 1)` and `m_t(c) = E[up_t · 1{up_t ≥ 1}]` under
//!   tier `t`'s aggregated machine-repair chain. Replacing each
//!   `p_s(c_s)` by its maximum over the box range makes the numerator
//!   separable per tier; a small dynamic program then maximizes the
//!   surrogate `Σ_t m_t(c_t)·p̄_t / Σ_t c_t` *exactly* over the box
//!   (best numerator for every achievable total, then best ratio).
//!   Both bounds carry a relative safety margin of `1e-9` so float
//!   rounding in either direction can never turn a sound prune into a
//!   wrong one.
//!
//! A box is pruned only when, for **every** policy, some front member
//! strictly dominates its optimistic point `(asp_floor, coa_ub)`.
//! Domination is strict in the [`dominates`](crate::decision::dominates)
//! sense, so a box that might contain an exact objective tie with a
//! front member is never pruned — the surviving frontier is exactly the
//! frontier of the exhaustive enumeration, ties included.
//!
//! # Determinism
//!
//! Traversal is a fixed-order wave loop: boxes split on the widest tier
//! range (lowest tier index on ties, counts ascending), corner designs
//! evaluate through [`Experiment`] (bitwise thread-count invariant), and
//! the front updates sequentially in wave order. The reported frontier
//! is re-sorted under the exhaustive tie-break (ascending ASP, then
//! design-enumeration order, then policy order), so the outcome is
//! byte-identical to [`pareto_frontier_batch`] over the materialized
//! grid at any thread count.
//!
//! # Examples
//!
//! ```
//! use redeval::optimize::Optimizer;
//! use redeval::scenario::builtin;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let doc = builtin::paper_case_study();
//! let outcome = Optimizer::from_scenario(&doc)?
//!     .max_redundancy(3)
//!     .threads(2)
//!     .run()?;
//! assert!(!outcome.frontier.is_empty());
//! assert!((outcome.evaluated_designs as f64) <= outcome.space_designs);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use redeval_avail::{NetworkModel, ServerAnalysis, Tier};
use redeval_harm::MetricsConfig;

use crate::decision::{pareto_frontier_batch, ParetoFront};
use crate::error::EvalError;
use crate::evaluation::{DesignEvaluation, PatchPolicy};
use crate::exec::{default_threads, AnalysisCache, Experiment, Pool, Scenario};
use crate::spec::{Design, NetworkSpec};

/// Default per-tier count bound when a request does not name one —
/// matches the CLI's `--max-redundancy` default.
pub const DEFAULT_MAX_REDUNDANCY: u32 = 4;

/// Relative safety margin applied to both optimistic bounds: ASP floors
/// shrink and COA ceilings grow by this factor, so float rounding in
/// the evaluation pipeline (factored vs enumerated availability, path
/// aggregation order) can never turn a sound prune into a wrong one.
/// Observed discrepancies are ~1e-15 relative; the margin costs a few
/// extra evaluations near the frontier and nothing else.
const FP_MARGIN: f64 = 1e-9;

/// A sub-box of the design space: per-tier count ranges `[lo_i, hi_i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpaceBox {
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl SpaceBox {
    fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Widest dimension, lowest index on ties.
    fn widest(&self) -> usize {
        let mut best = 0;
        let mut width = 0;
        for (i, (l, h)) in self.lo.iter().zip(&self.hi).enumerate() {
            let w = h - l;
            if w > width {
                width = w;
                best = i;
            }
        }
        best
    }
}

/// Per-tier availability tables backing the box-level COA bound: for
/// tier `t` at count `c`, `p[t][c-1] = P(up ≥ 1)` and
/// `m[t][c-1] = E[up · 1{up ≥ 1}]` under the tier's aggregated
/// machine-repair chain — the same moments the factored COA form of
/// [`NetworkModel`] uses, computed through the same solver.
struct CoaBounder {
    p: Vec<Vec<f64>>,
    m: Vec<Vec<f64>>,
}

impl CoaBounder {
    fn new(
        spec: &NetworkSpec,
        analyses: &[Arc<ServerAnalysis>],
        max_redundancy: u32,
    ) -> Result<Self, EvalError> {
        let mut p = Vec::with_capacity(spec.tiers().len());
        let mut m = Vec::with_capacity(spec.tiers().len());
        for (tier, analysis) in spec.tiers().iter().zip(analyses) {
            let rates = analysis.rates();
            let mut pt = Vec::with_capacity(max_redundancy as usize);
            let mut mt = Vec::with_capacity(max_redundancy as usize);
            for c in 1..=max_redundancy {
                let chain = NetworkModel::new(vec![Tier::new(tier.name.clone(), c, rates)]);
                let dist = chain.tier_down_distribution(0)?;
                let mut prob_up = 0.0;
                let mut mean_up = 0.0;
                for (down, &prob) in dist.iter().enumerate() {
                    let up = c - down as u32;
                    if up >= 1 {
                        prob_up += prob;
                        mean_up += prob * f64::from(up);
                    }
                }
                pt.push(prob_up);
                mt.push(mean_up);
            }
            p.push(pt);
            m.push(mt);
        }
        Ok(CoaBounder { p, m })
    }

    /// Sound upper bound on COA over every design in the box: the exact
    /// maximum of the separable surrogate (see the [module docs](self)),
    /// inflated by [`FP_MARGIN`].
    fn coa_upper_bound(&self, b: &SpaceBox) -> f64 {
        let n = self.p.len();
        // Per-tier max of P(up ≥ 1) over the count range. (Monotone in
        // the count in practice, but soundness never rests on that.)
        let pmax: Vec<f64> = (0..n)
            .map(|t| {
                (b.lo[t]..=b.hi[t])
                    .map(|c| self.p[t][(c - 1) as usize])
                    .fold(0.0, f64::max)
            })
            .collect();
        // pbar[t] = Π_{s≠t} pmax[s] via prefix/suffix products.
        let mut prefix = vec![1.0; n + 1];
        for (i, &v) in pmax.iter().enumerate() {
            prefix[i + 1] = prefix[i] * v;
        }
        let mut suffix = vec![1.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] * pmax[i];
        }
        // dp[j] = best surrogate numerator over partial totals
        // Σ lo_t + j; one pass per tier keeps it exact.
        let mut dp = vec![0.0f64];
        for t in 0..n {
            let width = (b.hi[t] - b.lo[t]) as usize;
            let pbar = prefix[t] * suffix[t + 1];
            let mut next = vec![f64::NEG_INFINITY; dp.len() + width];
            for (j, &v) in dp.iter().enumerate() {
                if v == f64::NEG_INFINITY {
                    continue;
                }
                for c in b.lo[t]..=b.hi[t] {
                    let off = j + (c - b.lo[t]) as usize;
                    let val = v + self.m[t][(c - 1) as usize] * pbar;
                    if val > next[off] {
                        next[off] = val;
                    }
                }
            }
            dp = next;
        }
        let total_lo: u32 = b.lo.iter().sum();
        let mut best = 0.0f64;
        for (j, &v) in dp.iter().enumerate() {
            if v == f64::NEG_INFINITY {
                continue;
            }
            best = best.max(v / (f64::from(total_lo) + j as f64));
        }
        best * (1.0 + FP_MARGIN)
    }
}

/// What one pruned-search run found and what it cost.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The Pareto frontier on (after-patch ASP ↓, COA ↑) — byte-identical
    /// to [`pareto_frontier_batch`] over the exhaustively enumerated
    /// design × policy grid, in the same order.
    pub frontier: Vec<DesignEvaluation>,
    /// Index into the optimizer's policy list of each frontier member,
    /// aligned with [`frontier`](Self::frontier) — the equilibrium layer
    /// reads the defender's chosen policy from here instead of parsing
    /// it back out of the scenario label.
    pub frontier_policy_indices: Vec<usize>,
    /// Distinct designs actually evaluated (low corners of surviving
    /// boxes, which include every surviving point).
    pub evaluated_designs: usize,
    /// Design × policy cells actually evaluated
    /// (`evaluated_designs × policies`).
    pub evaluated_cells: usize,
    /// Boxes taken off the work list (pruned, split or collapsed to a
    /// point).
    pub boxes_explored: usize,
    /// Boxes discarded because their optimistic bound was dominated for
    /// every policy.
    pub boxes_pruned: usize,
    /// The pruned boxes themselves, as `(lo, hi)` per-tier count ranges —
    /// every design inside one is dominated (the differential proptests
    /// assert no frontier member falls in any of them).
    pub pruned_boxes: Vec<(Vec<u32>, Vec<u32>)>,
    /// Total designs in the space, `max_redundancy ^ tiers` (as `f64`:
    /// fleet-scale spaces overflow any integer width).
    pub space_designs: f64,
    /// Total design × policy cells in the space.
    pub space_cells: f64,
}

impl OptimizeOutcome {
    /// Fraction of the design × policy space actually evaluated.
    pub fn evaluated_fraction(&self) -> f64 {
        if self.space_cells > 0.0 {
            self.evaluated_cells as f64 / self.space_cells
        } else {
            0.0
        }
    }
}

/// Deterministic branch-and-bound over the redundancy-count design
/// space (see the [module docs](self)).
///
/// Mirrors the [`Sweep`](crate::exec::Sweep) builder: policies and
/// metrics default from the scenario document, execution runs on scoped
/// threads ([`run`](Optimizer::run)) or a shared [`Pool`]
/// ([`run_on`](Optimizer::run_on)) with a shared [`AnalysisCache`] for
/// per-tier solve dedup.
#[derive(Debug, Clone)]
pub struct Optimizer {
    spec: Arc<NetworkSpec>,
    policies: Vec<PatchPolicy>,
    metrics: MetricsConfig,
    max_redundancy: u32,
    threads: usize,
    cache: Arc<AnalysisCache>,
}

impl Optimizer {
    /// An optimizer over `spec` with the paper's critical-only policy,
    /// default metrics, [`DEFAULT_MAX_REDUNDANCY`] and
    /// [`default_threads`].
    pub fn new(spec: NetworkSpec) -> Self {
        Optimizer {
            spec: Arc::new(spec),
            policies: vec![PatchPolicy::CriticalOnly(8.0)],
            metrics: MetricsConfig::default(),
            max_redundancy: DEFAULT_MAX_REDUNDANCY,
            threads: default_threads(),
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// An optimizer over a scenario document: its network, its policy
    /// list and its metric configuration. The document's explicit design
    /// list is *not* consulted — the search explores the full
    /// `1..=max_redundancy` space.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation errors.
    pub fn from_scenario(doc: &crate::scenario::ScenarioDoc) -> Result<Self, EvalError> {
        let spec = doc.to_spec()?;
        Ok(Optimizer::new(spec)
            .policies(doc.policies.clone())
            .metrics(doc.metrics))
    }

    /// Sets the per-tier count bound (clamped to at least 1).
    pub fn max_redundancy(mut self, max_redundancy: u32) -> Self {
        self.max_redundancy = max_redundancy.max(1);
        self
    }

    /// Sets the patch-policy axis.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list.
    pub fn policies(mut self, policies: Vec<PatchPolicy>) -> Self {
        assert!(!policies.is_empty(), "at least one policy required");
        self.policies = policies;
        self
    }

    /// Sets the security-metric configuration.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares an existing analysis cache (e.g. the serving path's).
    pub fn share_cache(mut self, cache: &Arc<AnalysisCache>) -> Self {
        self.cache = Arc::clone(cache);
        self
    }

    /// Total designs in the search space, `max_redundancy ^ tiers`.
    pub fn space_designs(&self) -> f64 {
        f64::from(self.max_redundancy).powi(self.spec.tiers().len() as i32)
    }

    /// Runs the search on per-call scoped threads.
    ///
    /// # Errors
    ///
    /// Returns count-validation and solver errors (earliest in wave
    /// order, like the batch executor).
    pub fn run(&self) -> Result<OptimizeOutcome, EvalError> {
        self.run_impl(None)
    }

    /// [`run`](Optimizer::run) on a reusable [`Pool`] — the serving
    /// path. Bitwise-identical outcome for any pool size.
    ///
    /// # Errors
    ///
    /// As [`run`](Optimizer::run).
    pub fn run_on(&self, pool: &Pool) -> Result<OptimizeOutcome, EvalError> {
        self.run_impl(Some(pool))
    }

    /// The scenario label convention shared with
    /// [`Sweep::scenarios`](crate::exec::Sweep): the design name,
    /// policy-suffixed only when the policy axis has more than one
    /// point.
    fn label(&self, design_name: &str, policy: PatchPolicy) -> String {
        if self.policies.len() > 1 {
            format!("{design_name} | {policy}")
        } else {
            design_name.to_string()
        }
    }

    /// Evaluates the not-yet-memoized designs of `need` (all policies
    /// per design, grouped exactly like a sweep cell) and offers every
    /// cell to the front.
    fn evaluate_wave(
        &self,
        pool: Option<&Pool>,
        need: &[Vec<u32>],
        memo: &mut HashMap<Vec<u32>, Vec<DesignEvaluation>>,
        front: &mut ParetoFront<(usize, DesignEvaluation)>,
    ) -> Result<(), EvalError> {
        if need.is_empty() {
            return Ok(());
        }
        let names: Vec<&str> = self.spec.tiers().iter().map(|t| t.name.as_str()).collect();
        let mut scenarios = Vec::with_capacity(need.len() * self.policies.len());
        for counts in need {
            let name = Design::conventional_name(&names, counts);
            for &policy in &self.policies {
                scenarios.push(Scenario {
                    label: self.label(&name, policy),
                    spec: Arc::clone(&self.spec),
                    design: Design::new(name.clone(), counts.clone()),
                    patch: policy,
                    metrics: self.metrics,
                });
            }
        }
        let experiment = Experiment::new(scenarios)
            .threads(self.threads)
            .share_cache(&self.cache);
        let evals = match pool {
            Some(pool) => experiment.run_on(pool)?,
            None => experiment.run()?,
        };
        for (counts, cell) in need.iter().zip(evals.chunks(self.policies.len())) {
            for (policy_idx, e) in cell.iter().enumerate() {
                front.insert(
                    e.after.attack_success_probability,
                    e.coa,
                    (policy_idx, e.clone()),
                );
            }
            memo.insert(counts.clone(), cell.to_vec());
        }
        Ok(())
    }

    fn run_impl(&self, pool: Option<&Pool>) -> Result<OptimizeOutcome, EvalError> {
        let tiers = self.spec.tiers().len();
        let space_designs = self.space_designs();
        let space_cells = space_designs * self.policies.len() as f64;
        let tel = self.cache.telemetry().clone();
        let _span = tel.span(format!("optimize (max_redundancy {})", self.max_redundancy));
        let analyses = self.cache.analyses_for(&self.spec)?;
        let bounder = CoaBounder::new(&self.spec, &analyses, self.max_redundancy)?;

        let mut memo: HashMap<Vec<u32>, Vec<DesignEvaluation>> = HashMap::new();
        let mut front: ParetoFront<(usize, DesignEvaluation)> = ParetoFront::new();
        // A wave item carries the ASP floors (one per policy) inherited
        // from its parent's low corner — a valid lower bound since
        // `parent.lo ≤ child.lo` — so dominated children prune before
        // evaluating anything.
        let mut wave = vec![(
            SpaceBox {
                lo: vec![1; tiers],
                hi: vec![self.max_redundancy; tiers],
            },
            vec![f64::NEG_INFINITY; self.policies.len()],
        )];
        let mut boxes_explored = 0;
        let mut boxes_pruned = 0;
        let mut pruned_boxes = Vec::new();

        let mut wave_no = 0usize;
        while !wave.is_empty() {
            wave_no += 1;
            let _wave_span = tel.span(format!("wave {wave_no} ({} boxes)", wave.len()));
            // Stage A: prune on inherited floors, no evaluation needed.
            let mut survivors = Vec::with_capacity(wave.len());
            for (b, floors) in wave {
                boxes_explored += 1;
                tel.add(crate::telemetry::Counter::BoxesExplored, 1);
                let coa_ub = bounder.coa_upper_bound(&b);
                if floors.iter().all(|&f| front.dominates_point(f, coa_ub)) {
                    boxes_pruned += 1;
                    tel.add(crate::telemetry::Counter::BoxesPruned, 1);
                    pruned_boxes.push((b.lo, b.hi));
                    continue;
                }
                survivors.push((b, coa_ub));
            }

            // Evaluate the surviving low corners, first-appearance order.
            let mut need: Vec<Vec<u32>> = Vec::new();
            let mut queued: HashSet<Vec<u32>> = HashSet::new();
            for (b, _) in &survivors {
                if !memo.contains_key(&b.lo) && queued.insert(b.lo.clone()) {
                    need.push(b.lo.clone());
                }
            }
            self.evaluate_wave(pool, &need, &mut memo, &mut front)?;

            // Stage B: re-prune on the exact corner ASP, else split.
            let mut next = Vec::new();
            for (b, coa_ub) in survivors {
                if b.is_point() {
                    continue; // Its single design was evaluated above.
                }
                let floors: Vec<f64> = memo[&b.lo]
                    .iter()
                    .map(|e| e.after.attack_success_probability * (1.0 - FP_MARGIN))
                    .collect();
                if floors.iter().all(|&f| front.dominates_point(f, coa_ub)) {
                    boxes_pruned += 1;
                    tel.add(crate::telemetry::Counter::BoxesPruned, 1);
                    pruned_boxes.push((b.lo, b.hi));
                    continue;
                }
                let d = b.widest();
                let mid = b.lo[d] + (b.hi[d] - b.lo[d]) / 2;
                let mut low_half = b.clone();
                low_half.hi[d] = mid;
                let mut high_half = b;
                high_half.lo[d] = mid + 1;
                next.push((low_half, floors.clone()));
                next.push((high_half, floors));
            }
            wave = next;
        }

        // Re-sort exact ASP ties under the exhaustive grid's tie-break:
        // design-enumeration order (counts[0] fastest), then policy.
        let mut entries = front.into_entries();
        entries.sort_by(|(a_asp, _, (a_p, a_e)), (b_asp, _, (b_p, b_e))| {
            a_asp.partial_cmp(b_asp).expect("finite ASP").then_with(|| {
                a_e.counts
                    .iter()
                    .rev()
                    .cmp(b_e.counts.iter().rev())
                    .then(a_p.cmp(b_p))
            })
        });
        let evaluated_designs = memo.len();
        let frontier_policy_indices = entries.iter().map(|(_, _, (p, _))| *p).collect();
        Ok(OptimizeOutcome {
            frontier: entries.into_iter().map(|(_, _, (_, e))| e).collect(),
            frontier_policy_indices,
            evaluated_designs,
            evaluated_cells: evaluated_designs * self.policies.len(),
            boxes_explored,
            boxes_pruned,
            pruned_boxes,
            space_designs,
            space_cells,
        })
    }
}

/// Reference implementation for small spaces: materialize the full grid
/// through the batch executor and take [`pareto_frontier_batch`] — what
/// the optimizer must agree with byte-for-byte.
///
/// # Errors
///
/// Propagates grid evaluation errors.
pub fn exhaustive_frontier(optimizer: &Optimizer) -> Result<Vec<DesignEvaluation>, EvalError> {
    let sweep = crate::exec::Sweep::new((*optimizer.spec).clone())
        .full_design_space(optimizer.max_redundancy)
        .policies(optimizer.policies.clone())
        .metrics(optimizer.metrics)
        .threads(optimizer.threads);
    let evals = sweep.run()?;
    Ok(pareto_frontier_batch(&evals, optimizer.threads)
        .into_iter()
        .cloned()
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin;

    #[test]
    fn matches_exhaustive_frontier_on_the_case_study() {
        let doc = builtin::paper_case_study();
        let opt = Optimizer::from_scenario(&doc).unwrap().max_redundancy(3);
        let outcome = opt.run().unwrap();
        let exhaustive = exhaustive_frontier(&opt).unwrap();
        assert_eq!(outcome.frontier.len(), exhaustive.len());
        for (a, b) in outcome.frontier.iter().zip(&exhaustive) {
            assert_eq!(a, b);
            assert_eq!(a.coa.to_bits(), b.coa.to_bits());
            assert_eq!(
                a.after.attack_success_probability.to_bits(),
                b.after.attack_success_probability.to_bits()
            );
        }
        // The search never pays for the whole grid.
        assert!(outcome.evaluated_designs as f64 <= outcome.space_designs);
        assert_eq!(outcome.space_designs, 81.0); // 3^4 designs
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let doc = builtin::ecommerce();
        let reference = Optimizer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(3)
            .threads(1)
            .run()
            .unwrap();
        for threads in [2, 4] {
            let outcome = Optimizer::from_scenario(&doc)
                .unwrap()
                .max_redundancy(3)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(outcome.frontier, reference.frontier);
            assert_eq!(outcome.evaluated_designs, reference.evaluated_designs);
            assert_eq!(outcome.boxes_pruned, reference.boxes_pruned);
        }
    }

    #[test]
    fn pooled_run_is_identical_and_shares_the_cache() {
        let doc = builtin::paper_case_study();
        let pool = Pool::new(3);
        let cache = Arc::new(AnalysisCache::new());
        let opt = Optimizer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2)
            .share_cache(&cache);
        let pooled = opt.run_on(&pool).unwrap();
        let scoped = opt.run().unwrap();
        assert_eq!(pooled.frontier, scoped.frontier);
        assert!(cache.solves() > 0);
    }

    #[test]
    fn single_point_space_is_the_whole_frontier_discussion() {
        let doc = builtin::paper_case_study();
        let outcome = Optimizer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(1)
            .run()
            .unwrap();
        assert_eq!(outcome.evaluated_designs, 1);
        assert_eq!(outcome.space_designs, 1.0);
        assert_eq!(outcome.boxes_pruned, 0);
        assert!(!outcome.frontier.is_empty());
    }

    #[test]
    fn pruned_boxes_never_contain_frontier_members() {
        let doc = builtin::ecommerce();
        let outcome = Optimizer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(4)
            .run()
            .unwrap();
        for member in &outcome.frontier {
            for (lo, hi) in &outcome.pruned_boxes {
                let inside = member
                    .counts
                    .iter()
                    .zip(lo.iter().zip(hi))
                    .all(|(c, (l, h))| l <= c && c <= h);
                assert!(!inside, "frontier member {} in pruned box", member.name);
            }
        }
    }

    #[test]
    fn search_prunes_most_of_a_larger_space() {
        let doc = builtin::ecommerce();
        let outcome = Optimizer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(4)
            .run()
            .unwrap();
        assert!(outcome.boxes_pruned > 0, "no pruning at all");
        assert!(
            (outcome.evaluated_designs as f64) < outcome.space_designs,
            "evaluated {} of {}",
            outcome.evaluated_designs,
            outcome.space_designs
        );
    }
}
