//! Attacker–defender equilibrium analysis: Gauss-Seidel best-response
//! iteration over the joint design/policy × entry-subset strategy space.
//!
//! # The game
//!
//! The paper evaluates *fixed* patch policies against a *static* attacker
//! who uses every entry point. This module makes both sides strategic:
//!
//! * the **defender** picks a redundancy design (per-tier counts in
//!   `1..=max_redundancy`) and a patch policy from the configured list,
//!   minimizing after-patch ASP and then maximizing COA;
//! * the **attacker** picks a non-empty subset of the entry tiers to
//!   commit to (realized as entry masking of the prebuilt HARM via
//!   [`Harm::with_entry_mask`] — the graph is never rebuilt), maximizing
//!   after-patch ASP and then AIM.
//!
//! Payoffs are evaluated through the existing pipeline: the defender's
//! inner best response is exactly [`Optimizer`]'s pruned branch-and-bound
//! over the entry-masked specification
//! ([`NetworkSpec::with_entry_tiers`]), the attacker's enumerates its
//! `2^k − 1` masks with a union-bound prune. Best responses alternate
//! Gauss-Seidel style — the scheme of the GNEP literature (Nie–Tang–Xu;
//! Choi–Nie–Tang–Zhong, see PAPERS.md) — with fixed player order
//! (defender first), until the profile repeats.
//!
//! # Determinism
//!
//! Everything is deterministic and thread-count invariant:
//!
//! * the defender's best response is the first member of the optimizer's
//!   frontier, which is byte-identical to the exhaustive grid's
//!   lexicographic argmin under (ASP ↑, COA ↓, counts reversed-lex ↑,
//!   policy index ↑) at any thread count;
//! * the attacker's best response enumerates masks in ascending bit
//!   order sequentially and replaces the incumbent only on a strictly
//!   better `(ASP, AIM)` pair, so ties resolve to the first-enumerated
//!   (smallest) mask;
//! * the attacker's union-bound prune (per-tier single-entry noisy-or
//!   ASPs, which upper-bound every aggregation strategy by the Harris
//!   inequality) discards a mask only when its bound is strictly below
//!   the incumbent with a `1e-9` relative safety margin, so pruning can
//!   never change the argmax — the pruned response byte-equals the
//!   exhaustive one;
//! * iteration stops on a fixed point (a mutual best response by
//!   construction), on a revisited attacker strategy (cycle detector),
//!   or at the bounded iteration cap.
//!
//! # Examples
//!
//! ```
//! use redeval::equilibrium::EquilibriumAnalyzer;
//! use redeval::scenario::builtin;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let doc = builtin::paper_case_study();
//! let outcome = EquilibriumAnalyzer::from_scenario(&doc)?
//!     .max_redundancy(2)
//!     .run()?;
//! assert!(outcome.converged);
//! assert!(outcome.attacker_mask.iter().any(|&b| b));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use redeval_harm::{AspStrategy, MetricsConfig};

use crate::error::{EvalError, SpecIssue};
use crate::evaluation::{DesignEvaluation, PatchPolicy};
use crate::exec::{default_threads, AnalysisCache, Pool};
use crate::optimize::{Optimizer, DEFAULT_MAX_REDUNDANCY};
use crate::spec::NetworkSpec;

#[cfg(doc)]
use redeval_harm::Harm;

/// Default Gauss-Seidel round cap — matches the CLI's `--max-iters`
/// default. Monotone entry-subset payoffs converge in a handful of
/// rounds; the cap is a hard stop for adversarial inputs.
pub const DEFAULT_MAX_ITERS: u32 = 16;

/// Most entry tiers the attacker-strategy enumeration covers
/// (`2^12 − 1 = 4095` masks per best response). Beyond this the analyzer
/// rejects the specification with a structural error instead of walking
/// an exponential space.
pub const MAX_ENTRY_TIERS: usize = 12;

/// Relative safety margin on the attacker's union bound, mirroring the
/// optimizer's discipline: the bound inflates by this factor before the
/// strict comparison against the incumbent, so float rounding can never
/// turn a sound prune into a wrong one.
const FP_MARGIN: f64 = 1e-9;

/// The defender's best response to one attacker strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenderResponse {
    /// The chosen design's evaluation *under the attacker's entry mask*
    /// (its `after` metrics see only the masked entry points).
    pub eval: DesignEvaluation,
    /// Index of the chosen policy in the analyzer's policy list.
    pub policy_idx: usize,
    /// Design × policy cells the pruned search evaluated.
    pub evaluated_cells: usize,
}

/// The attacker's best response to one defender strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerResponse {
    /// The chosen entry-tier mask (one slot per entry tier, in
    /// [`NetworkSpec::entry_tiers`] order).
    pub mask: Vec<bool>,
    /// After-patch ASP under the mask — the attacker's primary payoff.
    pub asp: f64,
    /// After-patch AIM under the mask — the tie-breaking payoff.
    pub aim: f64,
    /// Masks actually evaluated.
    pub evaluated: usize,
    /// Masks discarded by the union bound.
    pub pruned: usize,
}

/// One Gauss-Seidel round: the defender's response to the incoming
/// attacker strategy, then the attacker's response to it.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumStep {
    /// 1-based round number.
    pub iteration: usize,
    /// The defender's chosen design name.
    pub design: String,
    /// The defender's chosen policy index.
    pub policy_idx: usize,
    /// After-patch ASP of the defender's choice (under the incoming
    /// mask).
    pub defender_asp: f64,
    /// COA of the defender's choice.
    pub defender_coa: f64,
    /// The attacker's responding entry-tier mask.
    pub mask: Vec<bool>,
    /// The attacker's payoff ASP under its response.
    pub attacker_asp: f64,
    /// The attacker's payoff AIM under its response.
    pub attacker_aim: f64,
}

/// What one equilibrium run found and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumOutcome {
    /// The defender's final strategy, evaluated under the mask it
    /// responded to (at a fixed point that *is* the equilibrium mask).
    pub defender: DesignEvaluation,
    /// Index of the defender's final policy in the policy list.
    pub policy_idx: usize,
    /// The attacker's final entry-tier mask.
    pub attacker_mask: Vec<bool>,
    /// The attacker's payoff ASP at the final profile.
    pub attacker_asp: f64,
    /// The attacker's payoff AIM at the final profile.
    pub attacker_aim: f64,
    /// Whether the iteration reached a fixed point (a mutual best
    /// response, i.e. a Nash equilibrium of the discretized game).
    pub converged: bool,
    /// Whether a non-trivial strategy cycle was detected instead.
    pub cycle_detected: bool,
    /// Gauss-Seidel rounds executed.
    pub iterations: usize,
    /// Per-round trace, in order.
    pub trace: Vec<EquilibriumStep>,
    /// Names of the entry tiers, aligned with the mask slots.
    pub entry_tier_names: Vec<String>,
    /// Design × policy cells evaluated over all defender best responses.
    pub defender_evaluated_cells: usize,
    /// Design × policy cells one exhaustive defender best response would
    /// evaluate (`max_redundancy ^ tiers × policies`).
    pub defender_space_cells: f64,
    /// Masks evaluated over all attacker best responses.
    pub attacker_masks_evaluated: usize,
    /// Masks discarded by the union bound over all attacker best
    /// responses.
    pub attacker_masks_pruned: usize,
    /// Candidate masks per attacker best response (`2^k − 1`).
    pub attacker_space_masks: u64,
}

impl EquilibriumOutcome {
    /// Names of the entry tiers the attacker's final mask selects.
    pub fn attacker_entry_tiers(&self) -> Vec<&str> {
        self.entry_tier_names
            .iter()
            .zip(&self.attacker_mask)
            .filter_map(|(n, &keep)| keep.then_some(n.as_str()))
            .collect()
    }

    /// Fraction of the per-round defender space the iteration actually
    /// evaluated (can exceed 1.0 only if pruning never fires across many
    /// rounds).
    pub fn defender_evaluated_fraction(&self) -> f64 {
        let space = self.defender_space_cells * self.iterations as f64;
        if space > 0.0 {
            self.defender_evaluated_cells as f64 / space
        } else {
            0.0
        }
    }

    /// Fraction of attacker candidates discarded without evaluation.
    pub fn attacker_pruned_fraction(&self) -> f64 {
        let total = self.attacker_masks_evaluated + self.attacker_masks_pruned;
        if total > 0 {
            self.attacker_masks_pruned as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Deterministic Gauss-Seidel best-response iteration (see the
/// [module docs](self)).
///
/// Mirrors the [`Optimizer`] builder: policies and metrics default from
/// the scenario document, execution runs on per-call scoped threads
/// ([`run`](EquilibriumAnalyzer::run)) or a reusable [`Pool`]
/// ([`run_on`](EquilibriumAnalyzer::run_on)) with a shared
/// [`AnalysisCache`] — entry masking never touches tier parameters, so
/// every round and every mask reuse the same per-tier solves.
#[derive(Debug, Clone)]
pub struct EquilibriumAnalyzer {
    spec: Arc<NetworkSpec>,
    policies: Vec<PatchPolicy>,
    metrics: MetricsConfig,
    max_redundancy: u32,
    max_iters: u32,
    threads: usize,
    cache: Arc<AnalysisCache>,
}

impl EquilibriumAnalyzer {
    /// An analyzer over `spec` with the paper's critical-only policy,
    /// default metrics, [`DEFAULT_MAX_REDUNDANCY`], [`DEFAULT_MAX_ITERS`]
    /// and [`default_threads`].
    pub fn new(spec: NetworkSpec) -> Self {
        EquilibriumAnalyzer {
            spec: Arc::new(spec),
            policies: vec![PatchPolicy::CriticalOnly(8.0)],
            metrics: MetricsConfig::default(),
            max_redundancy: DEFAULT_MAX_REDUNDANCY,
            max_iters: DEFAULT_MAX_ITERS,
            threads: default_threads(),
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// An analyzer over a scenario document: its network, its policy
    /// list (the defender's policy axis) and its metric configuration.
    /// The document's explicit design list is *not* consulted — the
    /// defender explores the full `1..=max_redundancy` space.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation errors.
    pub fn from_scenario(doc: &crate::scenario::ScenarioDoc) -> Result<Self, EvalError> {
        let spec = doc.to_spec()?;
        Ok(EquilibriumAnalyzer::new(spec)
            .policies(doc.policies.clone())
            .metrics(doc.metrics))
    }

    /// Sets the defender's per-tier count bound (clamped to at least 1).
    pub fn max_redundancy(mut self, max_redundancy: u32) -> Self {
        self.max_redundancy = max_redundancy.max(1);
        self
    }

    /// Sets the Gauss-Seidel round cap (clamped to at least 1).
    pub fn max_iters(mut self, max_iters: u32) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Sets the defender's patch-policy axis.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list.
    pub fn policies(mut self, policies: Vec<PatchPolicy>) -> Self {
        assert!(!policies.is_empty(), "at least one policy required");
        self.policies = policies;
        self
    }

    /// Sets the security-metric configuration.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares an existing analysis cache (e.g. the serving path's).
    pub fn share_cache(mut self, cache: &Arc<AnalysisCache>) -> Self {
        self.cache = Arc::clone(cache);
        self
    }

    /// Candidate masks per attacker best response, `2^k − 1` over the
    /// spec's `k` entry tiers.
    pub fn attacker_space_masks(&self) -> u64 {
        (1u64 << self.spec.entry_tiers().len().min(63)) - 1
    }

    /// Runs the iteration on per-call scoped threads.
    ///
    /// # Errors
    ///
    /// [`SpecIssue::TooManyEntryTiers`] past [`MAX_ENTRY_TIERS`];
    /// otherwise count-validation and solver errors from the evaluation
    /// pipeline.
    pub fn run(&self) -> Result<EquilibriumOutcome, EvalError> {
        self.run_impl(None)
    }

    /// [`run`](EquilibriumAnalyzer::run) on a reusable [`Pool`] — the
    /// serving path. Bitwise-identical outcome for any pool size.
    ///
    /// # Errors
    ///
    /// As [`run`](EquilibriumAnalyzer::run).
    pub fn run_on(&self, pool: &Pool) -> Result<EquilibriumOutcome, EvalError> {
        self.run_impl(Some(pool))
    }

    /// The defender's best response to an entry-tier mask: the
    /// lexicographic optimum under (after-patch ASP ↑, COA ↓, counts
    /// reversed-lex ↑, policy index ↑) over the full design × policy
    /// space, computed as the first frontier member of the pruned
    /// branch-and-bound over the masked specification.
    ///
    /// # Errors
    ///
    /// Mask-validation ([`SpecIssue::NoEntryTier`] on all-false) and
    /// evaluation errors.
    pub fn defender_response(&self, mask: &[bool]) -> Result<DefenderResponse, EvalError> {
        self.defender_response_impl(mask, None)
    }

    fn defender_response_impl(
        &self,
        mask: &[bool],
        pool: Option<&Pool>,
    ) -> Result<DefenderResponse, EvalError> {
        let masked = self.spec.with_entry_tiers(mask)?;
        let optimizer = Optimizer::new(masked)
            .policies(self.policies.clone())
            .metrics(self.metrics)
            .max_redundancy(self.max_redundancy)
            .threads(self.threads)
            .share_cache(&self.cache);
        let outcome = match pool {
            Some(pool) => optimizer.run_on(pool)?,
            None => optimizer.run()?,
        };
        // The frontier is sorted (ASP ↑, counts reversed-lex ↑, policy ↑)
        // and equal-ASP members share their COA (an ASP tie with a COA
        // gap is a domination), so the head is the lexicographic optimum.
        let eval = outcome
            .frontier
            .first()
            .cloned()
            .expect("a non-empty design space has a non-empty frontier");
        let policy_idx = outcome.frontier_policy_indices[0];
        Ok(DefenderResponse {
            eval,
            policy_idx,
            evaluated_cells: outcome.evaluated_cells,
        })
    }

    /// The attacker's best response to a defender strategy: the
    /// first-enumerated maximizer of (after-patch ASP, then AIM) over all
    /// non-empty entry-tier masks, with the union-bound prune.
    ///
    /// # Errors
    ///
    /// [`SpecIssue::TooManyEntryTiers`], count-validation errors.
    ///
    /// # Panics
    ///
    /// Panics when `policy_idx` is out of range of the policy list.
    pub fn attacker_response(
        &self,
        counts: &[u32],
        policy_idx: usize,
    ) -> Result<AttackerResponse, EvalError> {
        self.attacker_response_impl(counts, policy_idx, true)
    }

    /// [`attacker_response`](EquilibriumAnalyzer::attacker_response)
    /// without the union-bound prune — the reference the differential
    /// tests compare against byte-for-byte.
    ///
    /// # Errors
    ///
    /// As [`attacker_response`](EquilibriumAnalyzer::attacker_response).
    pub fn attacker_response_exhaustive(
        &self,
        counts: &[u32],
        policy_idx: usize,
    ) -> Result<AttackerResponse, EvalError> {
        self.attacker_response_impl(counts, policy_idx, false)
    }

    fn attacker_response_impl(
        &self,
        counts: &[u32],
        policy_idx: usize,
        prune: bool,
    ) -> Result<AttackerResponse, EvalError> {
        let tel = self.cache.telemetry().clone();
        let _span = tel.span("attacker response");
        let entry_tiers = self.spec.entry_tiers();
        let k = entry_tiers.len();
        if k > MAX_ENTRY_TIERS {
            return Err(SpecIssue::TooManyEntryTiers {
                entries: k,
                max: MAX_ENTRY_TIERS,
            }
            .into());
        }
        let policy = self.policies[policy_idx];
        let spec = self.spec.with_counts(counts)?;
        // One HARM build + one patch round per best response; every
        // candidate is a re-mask of this model.
        let harm = spec.build_harm().patched(&move |v| policy.patches(v));
        // `build_harm` adds entry hosts tier-major, so a tier mask
        // expands to host slots by repeating each bit `count` times.
        let host_counts: Vec<usize> = entry_tiers.iter().map(|&ti| counts[ti] as usize).collect();
        let expand = |mask: &[bool]| -> Vec<bool> {
            mask.iter()
                .zip(&host_counts)
                .flat_map(|(&keep, &c)| std::iter::repeat(keep).take(c))
                .collect()
        };
        // Union-bound singles: per-tier ASP under noisy-or, which
        // upper-bounds every aggregation strategy (max-path trivially,
        // exact reliability by the Harris inequality), so
        // `min(1, Σ_{j∈S} single_j)` bounds ASP(S) for any strategy.
        let nor = MetricsConfig {
            asp: AspStrategy::NoisyOrPaths,
            ..self.metrics
        };
        let mut single_ub = Vec::with_capacity(k);
        for j in 0..k {
            let mut mask = vec![false; k];
            mask[j] = true;
            let m = harm.with_entry_mask(&expand(&mask)).metrics(&nor);
            single_ub.push(m.attack_success_probability);
        }
        let mut best: Option<(f64, f64, Vec<bool>)> = None;
        let mut evaluated = 0usize;
        let mut pruned = 0usize;
        for bits in 1u64..=((1u64 << k) - 1) {
            if prune {
                if let Some((best_asp, _, _)) = &best {
                    let ub = (0..k)
                        .filter(|j| bits & (1u64 << j) != 0)
                        .map(|j| single_ub[j])
                        .sum::<f64>()
                        .min(1.0)
                        * (1.0 + FP_MARGIN);
                    // Strictly below the incumbent: the mask can neither
                    // beat nor tie it, so skipping cannot change the
                    // argmax or its tie-break.
                    if ub < *best_asp {
                        pruned += 1;
                        tel.add(crate::telemetry::Counter::MasksPruned, 1);
                        continue;
                    }
                }
            }
            let mask: Vec<bool> = (0..k).map(|j| bits & (1u64 << j) != 0).collect();
            let m = harm.with_entry_mask(&expand(&mask)).metrics(&self.metrics);
            evaluated += 1;
            tel.add(crate::telemetry::Counter::MasksEvaluated, 1);
            let (asp, aim) = (m.attack_success_probability, m.attack_impact);
            let better = match &best {
                None => true,
                Some((b_asp, b_aim, _)) => asp > *b_asp || (asp == *b_asp && aim > *b_aim),
            };
            if better {
                best = Some((asp, aim, mask));
            }
        }
        let (asp, aim, mask) = best.expect("at least one entry tier, so at least one mask");
        Ok(AttackerResponse {
            mask,
            asp,
            aim,
            evaluated,
            pruned,
        })
    }

    fn run_impl(&self, pool: Option<&Pool>) -> Result<EquilibriumOutcome, EvalError> {
        let tel = self.cache.telemetry().clone();
        let _span = tel.span(format!("equilibrium (max_iters {})", self.max_iters));
        let entry_tiers = self.spec.entry_tiers();
        let k = entry_tiers.len();
        if k > MAX_ENTRY_TIERS {
            return Err(SpecIssue::TooManyEntryTiers {
                entries: k,
                max: MAX_ENTRY_TIERS,
            }
            .into());
        }
        let entry_tier_names: Vec<String> = entry_tiers
            .iter()
            .map(|&ti| self.spec.tiers()[ti].name.clone())
            .collect();
        let defender_space_cells = f64::from(self.max_redundancy)
            .powi(self.spec.tiers().len() as i32)
            * self.policies.len() as f64;

        // Round 0 attacker strategy: commit to every entry tier (the
        // paper's static adversary).
        let mut attacker: Vec<bool> = vec![true; k];
        let mut seen: Vec<Vec<bool>> = vec![attacker.clone()];
        let mut trace = Vec::new();
        let mut defender_evaluated_cells = 0usize;
        let mut masks_evaluated = 0usize;
        let mut masks_pruned = 0usize;
        let mut converged = false;
        let mut cycle_detected = false;
        let mut iterations = 0usize;
        let mut last: Option<(DefenderResponse, AttackerResponse)> = None;

        for iteration in 1..=self.max_iters {
            let _round_span = tel.span(format!("round {iteration}"));
            tel.add(crate::telemetry::Counter::EquilibriumRounds, 1);
            let d = self.defender_response_impl(&attacker, pool)?;
            defender_evaluated_cells += d.evaluated_cells;
            let a = self.attacker_response(&d.eval.counts, d.policy_idx)?;
            masks_evaluated += a.evaluated;
            masks_pruned += a.pruned;
            iterations = iteration as usize;
            trace.push(EquilibriumStep {
                iteration: iteration as usize,
                design: d.eval.name.clone(),
                policy_idx: d.policy_idx,
                defender_asp: d.eval.after.attack_success_probability,
                defender_coa: d.eval.coa,
                mask: a.mask.clone(),
                attacker_asp: a.asp,
                attacker_aim: a.aim,
            });
            let next = a.mask.clone();
            let fixed = next == attacker;
            last = Some((d, a));
            if fixed {
                // The defender best-responds to `attacker == next` and
                // the attacker best-responds to the defender: a mutual
                // best response.
                converged = true;
                break;
            }
            if seen.contains(&next) {
                cycle_detected = true;
                break;
            }
            seen.push(next.clone());
            attacker = next;
        }

        let (d, a) = last.expect("the round cap is at least 1");
        Ok(EquilibriumOutcome {
            defender: d.eval,
            policy_idx: d.policy_idx,
            attacker_mask: a.mask,
            attacker_asp: a.asp,
            attacker_aim: a.aim,
            converged,
            cycle_detected,
            iterations,
            trace,
            entry_tier_names,
            defender_evaluated_cells,
            defender_space_cells,
            attacker_masks_evaluated: masks_evaluated,
            attacker_masks_pruned: masks_pruned,
            attacker_space_masks: self.attacker_space_masks(),
        })
    }
}

/// Reference defender best response for small spaces: materialize the
/// full design × policy grid over the masked specification and take the
/// lexicographic argmin under (after-patch ASP ↑, COA ↓, counts
/// reversed-lex ↑, policy index ↑) — what
/// [`EquilibriumAnalyzer::defender_response`] must agree with
/// byte-for-byte.
///
/// # Errors
///
/// Propagates grid evaluation errors.
pub fn exhaustive_defender_response(
    analyzer: &EquilibriumAnalyzer,
    mask: &[bool],
) -> Result<(DesignEvaluation, usize), EvalError> {
    let masked = analyzer.spec.with_entry_tiers(mask)?;
    let sweep = crate::exec::Sweep::new(masked)
        .full_design_space(analyzer.max_redundancy)
        .policies(analyzer.policies.clone())
        .metrics(analyzer.metrics)
        .threads(analyzer.threads);
    let evals = sweep.run()?;
    // Grid order is already (counts reversed-lex ↑, policy ↑), so a
    // strict-improvement scan realizes the full tie-break.
    let mut best: Option<(usize, &DesignEvaluation)> = None;
    for (i, e) in evals.iter().enumerate() {
        let better = match best {
            None => true,
            Some((_, b)) => {
                let (ea, ba) = (
                    e.after.attack_success_probability,
                    b.after.attack_success_probability,
                );
                ea < ba || (ea == ba && e.coa > b.coa)
            }
        };
        if better {
            best = Some((i, e));
        }
    }
    let (i, e) = best.expect("non-empty grid");
    Ok((e.clone(), i % analyzer.policies.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin;

    #[test]
    fn converges_on_the_case_study_to_a_mutual_best_response() {
        let doc = builtin::paper_case_study();
        let analyzer = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2);
        let outcome = analyzer.run().unwrap();
        assert!(outcome.converged);
        assert!(!outcome.cycle_detected);
        assert!(outcome.iterations >= 1);

        // Brute force: the defender cannot improve against the final mask…
        let (best_eval, best_policy) =
            exhaustive_defender_response(&analyzer, &outcome.attacker_mask).unwrap();
        assert_eq!(best_eval, outcome.defender);
        assert_eq!(best_policy, outcome.policy_idx);
        // …and no attacker mask beats the final one (exhaustively).
        let a = analyzer
            .attacker_response_exhaustive(&outcome.defender.counts, outcome.policy_idx)
            .unwrap();
        assert_eq!(a.mask, outcome.attacker_mask);
        assert_eq!(a.asp.to_bits(), outcome.attacker_asp.to_bits());
        assert_eq!(a.aim.to_bits(), outcome.attacker_aim.to_bits());
    }

    #[test]
    fn outcome_is_bitwise_identical_across_runs_and_threads() {
        let doc = builtin::paper_case_study();
        let reference = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2)
            .threads(1)
            .run()
            .unwrap();
        for threads in [1, 2, 4] {
            let outcome = EquilibriumAnalyzer::from_scenario(&doc)
                .unwrap()
                .max_redundancy(2)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(outcome, reference);
            assert_eq!(
                outcome.defender.coa.to_bits(),
                reference.defender.coa.to_bits()
            );
            assert_eq!(
                outcome.attacker_asp.to_bits(),
                reference.attacker_asp.to_bits()
            );
        }
    }

    #[test]
    fn pooled_run_is_identical_and_shares_the_cache() {
        let doc = builtin::paper_case_study();
        let pool = Pool::new(3);
        let cache = Arc::new(AnalysisCache::new());
        let analyzer = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2)
            .share_cache(&cache);
        let pooled = analyzer.run_on(&pool).unwrap();
        let scoped = analyzer.run().unwrap();
        assert_eq!(pooled, scoped);
        assert!(cache.solves() > 0);
    }

    #[test]
    fn pruned_attacker_response_equals_exhaustive() {
        let doc = builtin::paper_case_study();
        let analyzer = EquilibriumAnalyzer::from_scenario(&doc).unwrap();
        for counts in [vec![1, 1, 1, 1], vec![2, 1, 2, 1], vec![2, 2, 2, 2]] {
            for policy_idx in 0..analyzer.policies.len() {
                let pruned = analyzer.attacker_response(&counts, policy_idx).unwrap();
                let full = analyzer
                    .attacker_response_exhaustive(&counts, policy_idx)
                    .unwrap();
                assert_eq!(pruned.mask, full.mask);
                assert_eq!(pruned.asp.to_bits(), full.asp.to_bits());
                assert_eq!(pruned.aim.to_bits(), full.aim.to_bits());
                assert_eq!(pruned.evaluated + pruned.pruned, full.evaluated);
            }
        }
    }

    #[test]
    fn defender_response_matches_the_exhaustive_argmin() {
        let doc = builtin::paper_case_study();
        let analyzer = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2);
        let k = analyzer.spec.entry_tiers().len();
        for bits in 1u64..(1u64 << k) {
            let mask: Vec<bool> = (0..k).map(|j| bits & (1 << j) != 0).collect();
            let pruned = analyzer.defender_response(&mask).unwrap();
            let (eval, policy_idx) = exhaustive_defender_response(&analyzer, &mask).unwrap();
            assert_eq!(pruned.eval, eval, "mask {mask:?}");
            assert_eq!(pruned.policy_idx, policy_idx);
            assert_eq!(pruned.eval.coa.to_bits(), eval.coa.to_bits());
        }
    }

    #[test]
    fn too_many_entry_tiers_is_a_structural_error() {
        use crate::spec::TierSpec;
        use redeval_avail::ServerParams;
        use redeval_harm::{AttackTree, Vulnerability};
        let mut tiers: Vec<TierSpec> = (0..MAX_ENTRY_TIERS + 1)
            .map(|i| TierSpec {
                name: format!("edge{i}"),
                count: 1,
                params: ServerParams::builder(format!("edge{i}")).build(),
                tree: Some(AttackTree::leaf(Vulnerability::new("v", 5.0, 0.5))),
                entry: true,
                target: false,
            })
            .collect();
        tiers.push(TierSpec {
            name: "core".into(),
            count: 1,
            params: ServerParams::builder("core").build(),
            tree: Some(AttackTree::leaf(Vulnerability::new("w", 5.0, 0.5))),
            entry: false,
            target: true,
        });
        let edges: Vec<(usize, usize)> = (0..MAX_ENTRY_TIERS + 1)
            .map(|i| (i, MAX_ENTRY_TIERS + 1))
            .collect();
        let spec = NetworkSpec::new(tiers, edges);
        let err = EquilibriumAnalyzer::new(spec).run().unwrap_err();
        assert!(matches!(
            err,
            EvalError::InvalidSpec(SpecIssue::TooManyEntryTiers { .. })
        ));
        assert!(err.to_string().contains("entry tiers"));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let doc = builtin::paper_case_study();
        let outcome = EquilibriumAnalyzer::from_scenario(&doc)
            .unwrap()
            .max_redundancy(2)
            .max_iters(1)
            .run()
            .unwrap();
        assert_eq!(outcome.iterations, 1);
        assert_eq!(outcome.trace.len(), 1);
    }

    #[test]
    fn attacker_full_mask_matches_the_static_pipeline() {
        // The attacker's payoff under the full mask must be exactly the
        // classic evaluation path's after-patch metrics.
        let doc = builtin::paper_case_study();
        let analyzer = EquilibriumAnalyzer::from_scenario(&doc).unwrap();
        let k = analyzer.spec.entry_tiers().len();
        let counts = vec![1; analyzer.spec.tiers().len()];
        let policy = analyzer.policies[0];
        let spec = analyzer.spec.with_counts(&counts).unwrap();
        let expected = spec
            .build_harm()
            .patched(&move |v| policy.patches(v))
            .metrics(&analyzer.metrics);
        let harm = spec.build_harm().patched(&move |v| policy.patches(v));
        let host_mask = vec![true; harm.graph().entries().len()];
        let masked = harm.with_entry_mask(&host_mask).metrics(&analyzer.metrics);
        assert_eq!(expected, masked);
        // And the BR search considered that mask (the all-ones bits).
        let a = analyzer.attacker_response_exhaustive(&counts, 0).unwrap();
        assert_eq!(a.evaluated as u64, (1u64 << k) - 1);
    }
}
