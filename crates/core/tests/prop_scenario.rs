//! Property-based round-trip suites for the scenario subsystem.
//!
//! Two contracts are pinned here:
//!
//! * `ScenarioDoc::from_json(doc.to_json()) == doc` for *generated*
//!   documents — the serializer and the hand-rolled parser can never
//!   drift apart, and every `f64` (durations, thresholds, impact values)
//!   survives the text round trip bit for bit;
//! * the 16 Table-I CVSS v2 vector strings parse and re-serialize to
//!   themselves, so the vector spellings embedded in scenario files are
//!   canonical.

use proptest::prelude::*;
use proptest::TestCaseError;
use redeval::scenario::{ScenarioDoc, TierDef, TreeDef, VulnDef, VulnSource};
use redeval::{case_study, Design, Durations, PatchPolicy, ServerParams};
use redeval_cvss::v2::BaseVector;
use redeval_harm::{AspStrategy, MetricsConfig, OrCombine};

/// A handful of valid CVSS v2 vectors to draw from (Table-I spellings
/// plus a few shapes the paper does not use).
const VECTORS: [&str; 6] = [
    "AV:N/AC:L/Au:N/C:C/I:C/A:C",
    "AV:N/AC:L/Au:N/C:P/I:N/A:N",
    "AV:L/AC:L/Au:N/C:C/I:C/A:C",
    "AV:N/AC:M/Au:N/C:P/I:N/A:N",
    "AV:A/AC:H/Au:S/C:P/I:P/A:P",
    "AV:N/AC:L/Au:M/C:N/I:P/A:C",
];

fn any_vuln_source() -> BoxedStrategy<VulnSource> {
    prop_oneof![
        (0usize..VECTORS.len()).prop_map(|i| VulnSource::Vector(VECTORS[i].to_string())),
        (0.0f64..=10.0, 0.0f64..=1.0).prop_map(|(impact, probability)| VulnSource::Explicit {
            impact,
            probability,
            base_score: None,
        }),
        (0.0f64..=10.0, 0.0f64..=1.0, 0.0f64..=10.0).prop_map(|(impact, probability, base)| {
            VulnSource::Explicit {
                impact,
                probability,
                base_score: Some(base),
            }
        }),
    ]
    .boxed()
}

/// A tree over `k` vulnerability ids (`v0..v{k-1}`): an OR of leaves and
/// two-leaf AND gates, which is the shape every paper tree takes.
fn any_tree(k: usize) -> BoxedStrategy<TreeDef> {
    let leaf = move |i: usize| TreeDef::Vuln(format!("v{}", i % k));
    prop_oneof![
        (0usize..k).prop_map(move |i| TreeDef::Or(vec![leaf(i)])),
        (0usize..k, 0usize..k).prop_map(move |(a, b)| TreeDef::Or(vec![leaf(a), leaf(b)])),
        (0usize..k, 0usize..k, 0usize..k).prop_map(move |(a, b, c)| {
            TreeDef::Or(vec![leaf(a), TreeDef::And(vec![leaf(b), leaf(c)])])
        }),
    ]
    .boxed()
}

/// Generated durations stay in a realistic positive range; `fmt_f64`
/// guarantees they survive the text round trip exactly.
fn any_params() -> BoxedStrategy<ServerParams> {
    let d = || (0.001f64..10_000.0).prop_map(Durations::hours);
    (
        (d(), d(), d(), d(), d(), d(), d()),
        (d(), d(), d(), d(), d(), d()),
    )
        .prop_map(
            |((a, b, c, dd, e, f, g), (h, i, j, k, l, m))| ServerParams {
                name: String::new(), // fixed up with the tier name below
                hw_mtbf: a,
                hw_repair: b,
                os_mtbf: c,
                os_repair: dd,
                os_patch: e,
                os_reboot_patch: f,
                os_reboot_failure: g,
                svc_mtbf: h,
                svc_repair: i,
                svc_patch: j,
                svc_reboot_patch: k,
                svc_reboot_failure: l,
                patch_interval: m,
            },
        )
        .boxed()
}

fn any_policy() -> BoxedStrategy<PatchPolicy> {
    prop_oneof![
        Just(PatchPolicy::None),
        Just(PatchPolicy::All),
        (0.0f64..=10.0).prop_map(PatchPolicy::CriticalOnly),
    ]
    .boxed()
}

fn any_metrics() -> BoxedStrategy<MetricsConfig> {
    (
        prop_oneof![Just(OrCombine::Max), Just(OrCombine::NoisyOr)],
        prop_oneof![
            Just(AspStrategy::MaxPath),
            Just(AspStrategy::NoisyOrPaths),
            Just(AspStrategy::Reliability),
        ],
        1usize..2_000_000,
    )
        .prop_map(|(or_combine, asp, max_paths)| MetricsConfig {
            or_combine,
            asp,
            max_paths,
        })
        .boxed()
}

/// A complete, *valid* scenario document: a chain topology over 1–4
/// tiers, each with a generated tree over a shared 1–6 entry
/// vulnerability catalogue, plus random designs, policies and metrics.
fn any_doc() -> BoxedStrategy<ScenarioDoc> {
    (
        prop::collection::vec(any_vuln_source(), 1..7),
        prop::collection::vec((1u32..4, any_params()), 1..5),
        prop::collection::vec(any_tree(1), 4..5), // placeholder trees, re-made below
        prop::collection::vec((1u32..4, 1u32..4, 1u32..4, 1u32..4), 1..3),
        prop::collection::vec(any_policy(), 1..4),
        any_metrics(),
        0u64..1_000_000,
    )
        .prop_map(
            |(sources, tiers_in, _, designs_in, policies, metrics, salt)| {
                let k = sources.len();
                let mut doc =
                    ScenarioDoc::new(format!("gen-{salt}"), format!("generated scenario #{salt}"));
                doc.description = "generated by prop_scenario".into();
                doc.vulnerabilities = sources
                    .into_iter()
                    .enumerate()
                    .map(|(i, source)| VulnDef {
                        id: format!("v{i}"),
                        cve: if i % 2 == 0 {
                            Some(format!("CVE-2016-{i:04}"))
                        } else {
                            None
                        },
                        source,
                    })
                    .collect();
                // One deterministic-shape tree per tier over the catalogue.
                doc.trees = tiers_in
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let a = TreeDef::Vuln(format!("v{}", i % k));
                        let b = TreeDef::Vuln(format!("v{}", (i + salt as usize) % k));
                        let tree = if i % 2 == 0 {
                            TreeDef::Or(vec![a, b])
                        } else {
                            TreeDef::Or(vec![TreeDef::And(vec![a, b])])
                        };
                        (format!("t{i}"), tree)
                    })
                    .collect();
                let n = tiers_in.len();
                doc.tiers = tiers_in
                    .into_iter()
                    .enumerate()
                    .map(|(i, (count, mut params))| {
                        let name = format!("tier{i}");
                        params.name = name.clone();
                        TierDef {
                            name,
                            count,
                            params,
                            tree: Some(format!("t{i}")),
                            entry: i == 0,
                            target: i + 1 == n,
                        }
                    })
                    .collect();
                doc.edges = (1..n)
                    .map(|i| (format!("tier{}", i - 1), format!("tier{i}")))
                    .collect();
                doc.designs = designs_in
                    .into_iter()
                    .enumerate()
                    .map(|(i, (a, b, c, d))| {
                        let counts: Vec<u32> = [a, b, c, d][..n].to_vec();
                        Design::new(format!("design {i}"), counts)
                    })
                    .collect();
                doc.policies = policies;
                doc.metrics = metrics;
                doc
            },
        )
        .boxed()
}

proptest! {
    /// The serializer and parser can never drift: `parse ∘ serialize` is
    /// the identity on generated documents, including every `f64` bit.
    #[test]
    fn generated_docs_round_trip(doc in any_doc()) {
        prop_assert!(doc.validate().is_ok(), "generated doc must be valid");
        let json = doc.to_json();
        let back = ScenarioDoc::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{json}")))?;
        prop_assert_eq!(&back, &doc);
        // The canonical form is a fixed point.
        prop_assert_eq!(back.to_json(), json);
    }

    /// Generated documents always resolve into buildable networks whose
    /// structure matches the declaration.
    #[test]
    fn generated_docs_resolve_to_specs(doc in any_doc()) {
        let spec = doc.to_spec()
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(spec.tiers().len(), doc.tiers.len());
        let declared: u32 = doc.tiers.iter().map(|t| t.count).sum();
        prop_assert_eq!(spec.total_servers(), declared);
        prop_assert_eq!(spec.edges().len(), doc.edges.len());
    }
}

proptest! {
    /// Proptest pass seeded from the generator corpus (all three
    /// families): single-byte edits of canonical generator output never
    /// panic the decoder, and anything it still accepts is a valid
    /// document whose canonical form is a fixed point.
    #[test]
    fn generator_corpus_tolerates_single_byte_edits(
        family_i in 0usize..redeval::scenario::generate::FAMILIES.len(),
        doc_seed in 0u64..24,
        pos_frac in 0.0f64..1.0,
        byte in 0u8..=255,
    ) {
        use redeval::scenario::generate::{self, GenParams};
        let family = generate::FAMILIES[family_i];
        let params = GenParams {
            tiers: 4 + (doc_seed % 3) as u32,
            redundancy: 1 + (doc_seed % 2) as u32,
            designs: 1,
            policies: 1,
        };
        let doc = generate::generate(family, &params, doc_seed);
        let mut bytes = doc.to_json().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        match ScenarioDoc::from_json(&text) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(accepted) => {
                prop_assert!(accepted.validate().is_ok());
                let json = accepted.to_json();
                let back = ScenarioDoc::from_json(&json)
                    .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                prop_assert_eq!(back.to_json(), json);
            }
        }
    }
}

/// Satellite check: all 16 Table-I vector strings are canonical — they
/// parse and re-serialize to themselves, so the vectors embedded in the
/// reference scenario file are the exact spellings CVSS defines.
#[test]
fn all_sixteen_table_i_vectors_round_trip() {
    for r in &case_study::VULNERABILITIES {
        let v: BaseVector = r
            .vector
            .parse()
            .unwrap_or_else(|e| panic!("{}: vector `{}` fails to parse: {e}", r.id, r.vector));
        assert_eq!(
            v.to_vector_string(),
            r.vector,
            "{}: vector round-trip",
            r.id
        );
        // And the derived numbers still match Table I.
        assert!(case_study::vector_consistent(r), "{}", r.id);
    }
}

proptest! {
    /// Any valid v2 vector embedded in a scenario file survives the
    /// document round trip and resolves to the same vulnerability.
    #[test]
    fn vectors_survive_document_round_trips(i in 0usize..VECTORS.len()) {
        let mut doc = ScenarioDoc::new("vec-rt", "vector round-trip");
        doc.vulnerabilities = vec![VulnDef {
            id: "v0".into(),
            cve: None,
            source: VulnSource::Vector(VECTORS[i].to_string()),
        }];
        doc.trees = vec![("t".into(), TreeDef::Or(vec![TreeDef::Vuln("v0".into())]))];
        doc.tiers = vec![TierDef {
            name: "only".into(),
            count: 1,
            params: ServerParams::builder("only").build(),
            tree: Some("t".into()),
            entry: true,
            target: true,
        }];
        doc.designs = vec![doc.base_design()];
        let back = ScenarioDoc::from_json(&doc.to_json())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&back, &doc);
        let v: BaseVector = VECTORS[i].parse().unwrap();
        prop_assert_eq!(v.to_vector_string(), VECTORS[i]);
    }
}
