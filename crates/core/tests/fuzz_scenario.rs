//! Deterministic byte-level fuzzing of the scenario parsing stack,
//! seeded from the canonical JSON the scenario generators emit (all
//! three families), so the mutation corpus tracks the real document
//! shape instead of a hand-written sample.
//!
//! The contract under test: for *any* byte-mangled input,
//!
//! * [`redeval::output::parse_json`], [`ScenarioDoc::from_json`] and
//!   [`ScenarioDoc::from_value`] never panic — every failure is a
//!   returned error;
//! * every rejection is typed and actionable: JSON errors carry a
//!   1-based line/column, schema errors a non-empty dotted path, and no
//!   error message is empty.
//!
//! The mutator is a tiny splitmix64 PRNG with fixed seeds — no
//! wall-clock, no global state — so a failure reproduces from the
//! (family, round) pair in the panic message alone.

use std::panic::{catch_unwind, AssertUnwindSafe};

use redeval::output::parse_json;
use redeval::scenario::generate::{self, GenParams};
use redeval::scenario::ScenarioDoc;
use redeval::{EvalError, ScenarioError};

/// splitmix64 — same recurrence the generators use.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xFF) as u8
    }
}

/// One random structural mutation: bit flip, byte replace, delete,
/// insert, truncate, or an internal splice.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Rng) {
    if bytes.is_empty() {
        bytes.push(rng.byte());
        return;
    }
    match rng.below(6) {
        0 => {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        1 => {
            let i = rng.below(bytes.len());
            bytes[i] = rng.byte();
        }
        2 => {
            let i = rng.below(bytes.len());
            bytes.remove(i);
        }
        3 => {
            let i = rng.below(bytes.len() + 1);
            bytes.insert(i, rng.byte());
        }
        4 => {
            let i = rng.below(bytes.len());
            bytes.truncate(i);
        }
        _ => {
            let len = 1 + rng.below(24).min(bytes.len() - 1);
            let src = rng.below(bytes.len() - len + 1);
            let dst = rng.below(bytes.len() - len + 1);
            let chunk: Vec<u8> = bytes[src..src + len].to_vec();
            bytes[dst..dst + len].copy_from_slice(&chunk);
        }
    }
}

/// Rejections must be typed, positioned and non-empty — the "dotted
/// path or line/column" contract of the scenario schema.
fn assert_actionable(e: &EvalError, context: &str) {
    match e {
        EvalError::Scenario(ScenarioError::Json { line, col, message }) => {
            assert!(
                *line >= 1 && *col >= 1 && !message.is_empty(),
                "{context}: JSON error without a position: {e}"
            );
        }
        EvalError::Scenario(ScenarioError::Invalid { at, message }) => {
            assert!(
                !at.is_empty() && !message.is_empty(),
                "{context}: schema error without a path: {e}"
            );
        }
        other => {
            // Spec-level defects (no entry tier, self edges, …) are
            // also fine — they are typed and carry their own context.
            assert!(!other.to_string().is_empty(), "{context}: empty error");
        }
    }
}

#[test]
fn mutated_generator_output_never_panics_and_fails_typed() {
    const ROUNDS: usize = 500;
    for (f, family) in generate::FAMILIES.into_iter().enumerate() {
        let doc = generate::generate(family, &GenParams::default(), 9);
        let canonical = doc.to_json();
        let mut rng = Rng(0x5EED_0000 + f as u64);
        let mut rejected = 0usize;
        for round in 0..ROUNDS {
            let mut bytes = canonical.clone().into_bytes();
            for _ in 0..=rng.below(4) {
                mutate(&mut bytes, &mut rng);
            }
            let text = String::from_utf8_lossy(&bytes).into_owned();
            let context = format!("{family} round {round}");

            // The raw JSON parser alone must be total.
            let parsed = catch_unwind(AssertUnwindSafe(|| parse_json(&text)))
                .unwrap_or_else(|_| panic!("{context}: parse_json panicked"));
            if let Err(e) = &parsed {
                assert!(
                    e.line >= 1 && e.col >= 1 && !e.message.is_empty(),
                    "{context}: JSON error without a position"
                );
            }

            // The full document decoder must be total too, through both
            // front doors (text and pre-parsed value).
            let decoded = catch_unwind(AssertUnwindSafe(|| ScenarioDoc::from_json(&text)))
                .unwrap_or_else(|_| panic!("{context}: from_json panicked"));
            if let Ok(value) = &parsed {
                let via_value = catch_unwind(AssertUnwindSafe(|| ScenarioDoc::from_value(value)))
                    .unwrap_or_else(|_| panic!("{context}: from_value panicked"));
                // Both doors agree on accept/reject for parseable text.
                assert_eq!(
                    decoded.is_ok(),
                    via_value.is_ok(),
                    "{context}: from_json and from_value disagree"
                );
            }
            match decoded {
                Ok(doc) => {
                    // Accepted documents honour the usual invariants.
                    assert!(doc.validate().is_ok(), "{context}: accepted but invalid");
                }
                Err(e) => {
                    rejected += 1;
                    assert_actionable(&e, &context);
                }
            }
        }
        // The mutator genuinely stresses the parser: the overwhelming
        // majority of mangled inputs must be rejections.
        assert!(
            rejected > ROUNDS / 2,
            "{family}: only {rejected}/{ROUNDS} mutations rejected — mutator too tame"
        );
    }
}

/// Truncations at every prefix length of a small generated document:
/// the classic incremental-parser crash corpus.
#[test]
fn every_prefix_of_a_generated_document_is_handled() {
    let doc = generate::generate(
        generate::Family::MicroserviceMesh,
        &GenParams {
            tiers: 5,
            redundancy: 1,
            designs: 1,
            policies: 1,
        },
        3,
    );
    let canonical = doc.to_json();
    // Stop before the closing `}`: the canonical form ends in `}\n` and
    // whitespace-only suffixes do not change completeness.
    for end in 0..canonical.trim_end().len() - 1 {
        let prefix = &canonical[..end];
        let r = catch_unwind(AssertUnwindSafe(|| ScenarioDoc::from_json(prefix)))
            .unwrap_or_else(|_| panic!("prefix of {end} bytes panicked"));
        let e = r.expect_err("a strict prefix can never be a complete document");
        assert_actionable(&e, &format!("prefix {end}"));
    }
}
