//! Property-based tests for attack trees and HARM metrics.

use proptest::prelude::*;
use redeval_harm::{
    AspStrategy, AttackGraph, AttackTree, Harm, MetricsConfig, OrCombine, Vulnerability,
};

/// Random attack tree of bounded depth.
fn tree(depth: u32) -> BoxedStrategy<AttackTree> {
    let leaf = (0.0f64..=10.0, 0.0f64..=1.0)
        .prop_map(|(imp, p)| AttackTree::leaf(Vulnerability::new("v", imp, p)));
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(AttackTree::and),
            prop::collection::vec(inner, 1..4).prop_map(AttackTree::or),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Probabilities stay in [0,1] under both OR semantics.
    #[test]
    fn probability_in_unit_interval(t in tree(3)) {
        for c in [OrCombine::Max, OrCombine::NoisyOr] {
            let p = t.probability(c);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "{p}");
        }
    }

    /// Noisy-or dominates max on every tree.
    #[test]
    fn noisy_or_dominates_max(t in tree(3)) {
        prop_assert!(t.probability(OrCombine::NoisyOr) >= t.probability(OrCombine::Max) - 1e-12);
    }

    /// Impact is non-negative and leaf counts add up.
    #[test]
    fn impact_and_counts(t in tree(3)) {
        prop_assert!(t.impact() >= 0.0);
        prop_assert_eq!(t.leaf_count(), t.vulnerabilities().len());
        prop_assert!(t.depth() >= 1);
    }

    /// Pruning is monotone: the surviving tree has no more leaves, and
    /// patching nothing is the identity.
    #[test]
    fn pruning_monotone(t in tree(3), threshold in 0.0f64..=10.0) {
        let keep_all = t.without(&|_| false).unwrap();
        prop_assert_eq!(&keep_all, &t);
        if let Some(pruned) = t.without(&|v| v.is_critical(threshold)) {
            prop_assert!(pruned.leaf_count() <= t.leaf_count());
            // No surviving leaf is critical.
            for v in pruned.vulnerabilities() {
                prop_assert!(!v.is_critical(threshold));
            }
        }
    }

    /// Pruned probability never exceeds the original (removing options
    /// cannot help the attacker).
    #[test]
    fn pruning_never_helps_attacker(t in tree(3), threshold in 0.0f64..=10.0) {
        if let Some(pruned) = t.without(&|v| v.is_critical(threshold)) {
            for c in [OrCombine::Max, OrCombine::NoisyOr] {
                prop_assert!(pruned.probability(c) <= t.probability(c) + 1e-9);
            }
        }
    }

    /// Network ASP orderings hold on random two-tier networks:
    /// MaxPath ≤ Reliability ≤ NoisyOrPaths.
    #[test]
    fn asp_strategy_ordering(
        web_probs in prop::collection::vec(0.0f64..=1.0, 1..4),
        db_prob in 0.0f64..=1.0,
    ) {
        let mut g = AttackGraph::new();
        let mut trees = Vec::new();
        let mut webs = Vec::new();
        for (i, &p) in web_probs.iter().enumerate() {
            let h = g.add_host(format!("web{i}"));
            g.add_entry(h);
            webs.push(h);
            trees.push(Some(AttackTree::leaf(Vulnerability::new("w", 5.0, p))));
        }
        let db = g.add_host("db");
        trees.push(Some(AttackTree::leaf(Vulnerability::new("d", 5.0, db_prob))));
        for &w in &webs {
            g.add_edge(w, db);
        }
        let harm = Harm::new(g, trees, vec![db]);
        let asp = |s| harm.metrics(&MetricsConfig { asp: s, ..Default::default() })
            .attack_success_probability;
        let max = asp(AspStrategy::MaxPath);
        let rel = asp(AspStrategy::Reliability);
        let nor = asp(AspStrategy::NoisyOrPaths);
        prop_assert!(max <= rel + 1e-9, "max {max} rel {rel}");
        prop_assert!(rel <= nor + 1e-9, "rel {rel} nor {nor}");
        // Exact value: db AND (at least one web).
        let any_web = 1.0 - web_probs.iter().map(|p| 1.0 - p).product::<f64>();
        prop_assert!((rel - db_prob * any_web).abs() < 1e-9);
    }

    /// Patching can only shrink every structural metric.
    #[test]
    fn patch_shrinks_metrics(
        probs in prop::collection::vec(0.1f64..=1.0, 2..5),
        threshold in 4.0f64..=9.5,
    ) {
        let mut g = AttackGraph::new();
        let mut trees = Vec::new();
        let mut prev: Option<redeval_harm::HostId> = None;
        for (i, &p) in probs.iter().enumerate() {
            let h = g.add_host(format!("h{i}"));
            if let Some(q) = prev {
                g.add_edge(q, h);
            } else {
                g.add_entry(h);
            }
            // Impact chosen so some vulns are critical, some not.
            let impact = if i % 2 == 0 { 10.0 } else { 2.9 };
            trees.push(Some(AttackTree::leaf(Vulnerability::new("v", impact, p))));
            prev = Some(h);
        }
        let target = prev.expect("at least two hosts");
        let harm = Harm::new(g, trees, vec![target]);
        let cfg = MetricsConfig::default();
        let before = harm.metrics(&cfg);
        let after = harm.patched_critical(threshold).metrics(&cfg);
        prop_assert!(after.exploitable_vulnerabilities <= before.exploitable_vulnerabilities);
        prop_assert!(after.attack_paths <= before.attack_paths);
        prop_assert!(after.entry_points <= before.entry_points);
        prop_assert!(after.attack_impact <= before.attack_impact + 1e-9);
        prop_assert!(
            after.attack_success_probability <= before.attack_success_probability + 1e-9
        );
    }
}
