//! HARM — the two-layer Hierarchical Attack Representation Model.
//!
//! This crate implements the graphical security model of the reproduced
//! paper (Hong & Kim's HARM):
//!
//! * the **lower layer** is an [`AttackTree`] per host: AND/OR combinations
//!   of [`Vulnerability`] leaves carrying CVSS-derived *attack impact* and
//!   *attack success probability* values;
//! * the **upper layer** is an [`AttackGraph`]: network reachability between
//!   hosts, an external attacker, and one or more targets;
//! * [`Harm`] ties the two together and computes the paper's security
//!   metrics (attack impact `AIM`, attack success probability `ASP`, number
//!   of exploitable vulnerabilities `NoEV`, number of attack paths `NoAP`,
//!   number of entry points `NoEP`) plus several extension metrics.
//!
//! Patching is modelled by [`Harm::patched`], which removes vulnerabilities
//! matching a predicate and prunes the attack trees accordingly — a host
//! whose tree dies stops being exploitable and disappears from attack
//! paths, exactly as in the paper's before/after analysis.
//!
//! In the reproduction this crate realizes the paper's Figure 3 HARMs
//! (trees populated from Table I via `redeval_cvss`) and produces the five
//! security metrics of Table II that enter the Equation (3),(4) decision
//! functions.
//!
//! # Examples
//!
//! ```
//! use redeval_harm::{AttackGraph, AttackTree, Harm, MetricsConfig, Vulnerability};
//!
//! // One web server in front of a database.
//! let mut g = AttackGraph::new();
//! let web = g.add_host("web");
//! let db = g.add_host("db");
//! g.add_entry(web);
//! g.add_edge(web, db);
//!
//! let web_tree = AttackTree::leaf(Vulnerability::new("CVE-A", 10.0, 1.0));
//! let db_tree = AttackTree::leaf(Vulnerability::new("CVE-B", 10.0, 0.5));
//! let harm = Harm::new(g, vec![Some(web_tree), Some(db_tree)], vec![db]);
//!
//! let m = harm.metrics(&MetricsConfig::default());
//! assert_eq!(m.attack_paths, 1);
//! assert_eq!(m.attack_impact, 20.0);
//! assert!((m.attack_success_probability - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod graph;
mod harm;
mod metrics;
pub mod topology;
mod tree;
mod vuln;

pub use graph::{AttackGraph, HostId};
pub use harm::{AttackPath, Harm};
pub use metrics::{AspStrategy, MetricsConfig, OrCombine, SecurityMetrics};
pub use tree::AttackTree;
pub use vuln::Vulnerability;

#[cfg(test)]
mod send_sync_audit {
    //! The batch execution layer shares HARMs across scoped worker
    //! threads; every public type must stay `Send + Sync`.
    use super::*;

    #[test]
    fn harm_types_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Harm>();
        ok::<AttackGraph>();
        ok::<AttackTree>();
        ok::<AttackPath>();
        ok::<Vulnerability>();
        ok::<MetricsConfig>();
        ok::<SecurityMetrics>();
    }
}
