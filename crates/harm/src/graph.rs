//! Attack graphs — the upper layer of the HARM.

use std::collections::HashSet;

/// Identifier of a host in an [`AttackGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) usize);

impl HostId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Network reachability between hosts, plus the external attacker's entry
/// edges.
///
/// # Examples
///
/// ```
/// use redeval_harm::AttackGraph;
///
/// let mut g = AttackGraph::new();
/// let dmz = g.add_host("dmz");
/// let db = g.add_host("db");
/// g.add_entry(dmz);
/// g.add_edge(dmz, db);
/// assert_eq!(g.host_count(), 2);
/// assert!(g.entries().contains(&dmz));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttackGraph {
    names: Vec<String>,
    /// Adjacency: successors of each host.
    succ: Vec<Vec<HostId>>,
    /// Hosts directly reachable by the external attacker.
    entries: Vec<HostId>,
}

impl AttackGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AttackGraph::default()
    }

    /// Adds a host and returns its id.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        self.names.push(name.into());
        self.succ.push(Vec::new());
        HostId(self.names.len() - 1)
    }

    /// Adds a reachability edge `from → to` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics on foreign ids or a self-edge.
    pub fn add_edge(&mut self, from: HostId, to: HostId) {
        assert!(from.0 < self.names.len(), "unknown source host");
        assert!(to.0 < self.names.len(), "unknown destination host");
        assert_ne!(from, to, "self edges are not allowed");
        if !self.succ[from.0].contains(&to) {
            self.succ[from.0].push(to);
        }
    }

    /// Marks a host as directly reachable from the attacker (idempotent).
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn add_entry(&mut self, host: HostId) {
        assert!(host.0 < self.names.len(), "unknown host");
        if !self.entries.contains(&host) {
            self.entries.push(host);
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.names.len()
    }

    /// All host ids in insertion order.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.names.len()).map(HostId)
    }

    /// Name of a host.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn host_name(&self, h: HostId) -> &str {
        &self.names[h.0]
    }

    /// Looks a host up by name.
    pub fn find_host(&self, name: &str) -> Option<HostId> {
        self.names.iter().position(|n| n == name).map(HostId)
    }

    /// Successors of a host.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn successors(&self, h: HostId) -> &[HostId] {
        &self.succ[h.0]
    }

    /// The attacker's entry hosts.
    pub fn entries(&self) -> &[HostId] {
        &self.entries
    }

    /// A copy of the graph keeping only the entry hosts whose position in
    /// [`entries`](Self::entries) is selected by `mask` (hosts and edges
    /// are untouched).
    ///
    /// An all-false mask yields a graph with no entries — every path
    /// enumeration over it is empty.
    ///
    /// # Panics
    ///
    /// Panics when `mask.len()` differs from the number of entries.
    pub fn with_entry_mask(&self, mask: &[bool]) -> AttackGraph {
        assert_eq!(
            mask.len(),
            self.entries.len(),
            "one mask slot per entry host required"
        );
        let entries = self
            .entries
            .iter()
            .zip(mask)
            .filter_map(|(&e, &keep)| keep.then_some(e))
            .collect();
        AttackGraph {
            names: self.names.clone(),
            succ: self.succ.clone(),
            entries,
        }
    }

    /// Enumerates all simple paths from any entry host to any target,
    /// traversing only hosts for which `passable` is true.
    ///
    /// Paths are host sequences (entry first, target last). `max_paths`
    /// bounds the enumeration; `None` is returned if it would be exceeded —
    /// callers treat that as "too many to enumerate".
    pub fn simple_paths(
        &self,
        targets: &[HostId],
        passable: &dyn Fn(HostId) -> bool,
        max_paths: usize,
    ) -> Option<Vec<Vec<HostId>>> {
        let (paths, truncated) = self.simple_paths_truncated(targets, passable, max_paths);
        if truncated {
            None
        } else {
            Some(paths)
        }
    }

    /// Like [`simple_paths`](Self::simple_paths) but on overflow returns the
    /// first `max_paths` paths together with `truncated = true` instead of
    /// discarding the work.
    pub fn simple_paths_truncated(
        &self,
        targets: &[HostId],
        passable: &dyn Fn(HostId) -> bool,
        max_paths: usize,
    ) -> (Vec<Vec<HostId>>, bool) {
        let target_set: HashSet<HostId> = targets.iter().copied().collect();
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut on_path = vec![false; self.names.len()];
        for &e in &self.entries {
            if !passable(e) {
                continue;
            }
            if !self.dfs(
                e,
                &target_set,
                passable,
                &mut stack,
                &mut on_path,
                &mut out,
                max_paths,
            ) {
                return (out, true);
            }
        }
        (out, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        h: HostId,
        targets: &HashSet<HostId>,
        passable: &dyn Fn(HostId) -> bool,
        stack: &mut Vec<HostId>,
        on_path: &mut Vec<bool>,
        out: &mut Vec<Vec<HostId>>,
        max_paths: usize,
    ) -> bool {
        stack.push(h);
        on_path[h.0] = true;
        if targets.contains(&h) {
            if out.len() >= max_paths {
                stack.pop();
                on_path[h.0] = false;
                return false;
            }
            out.push(stack.clone());
            // A target may also be an intermediate hop towards another
            // target; continue exploring below.
        }
        for &next in &self.succ[h.0] {
            if on_path[next.0] || !passable(next) {
                continue;
            }
            if !self.dfs(next, targets, passable, stack, on_path, out, max_paths) {
                stack.pop();
                on_path[h.0] = false;
                return false;
            }
        }
        stack.pop();
        on_path[h.0] = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dns -> {web1, web2} -> {app1, app2} -> db, with dns and webs as
    /// entries: the paper's case-study topology.
    fn case_study_like() -> (AttackGraph, Vec<HostId>, HostId) {
        let mut g = AttackGraph::new();
        let dns = g.add_host("dns1");
        let web1 = g.add_host("web1");
        let web2 = g.add_host("web2");
        let app1 = g.add_host("app1");
        let app2 = g.add_host("app2");
        let db = g.add_host("db1");
        g.add_entry(dns);
        g.add_entry(web1);
        g.add_entry(web2);
        for w in [web1, web2] {
            g.add_edge(dns, w);
            for a in [app1, app2] {
                g.add_edge(w, a);
                g.add_edge(a, db);
            }
        }
        (g, vec![dns, web1, web2, app1, app2], db)
    }

    #[test]
    fn eight_paths_before_patch() {
        let (g, _, db) = case_study_like();
        let paths = g.simple_paths(&[db], &|_| true, 1000).unwrap();
        assert_eq!(paths.len(), 8);
        // Each path ends at the target.
        assert!(paths.iter().all(|p| *p.last().unwrap() == db));
        // Path lengths: 4 of length 4 (via dns) and 4 of length 3.
        let of_len = |k| paths.iter().filter(|p| p.len() == k).count();
        assert_eq!(of_len(4), 4);
        assert_eq!(of_len(3), 4);
    }

    #[test]
    fn four_paths_when_dns_not_passable() {
        let (g, hosts, db) = case_study_like();
        let dns = hosts[0];
        let paths = g.simple_paths(&[db], &|h| h != dns, 1000).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn no_paths_when_target_unreachable() {
        let (g, hosts, db) = case_study_like();
        // Block both app servers.
        let (app1, app2) = (hosts[3], hosts[4]);
        let paths = g
            .simple_paths(&[db], &|h| h != app1 && h != app2, 1000)
            .unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn multiple_targets_collect_paths_to_each() {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let t1 = g.add_host("t1");
        let t2 = g.add_host("t2");
        g.add_entry(a);
        g.add_edge(a, t1);
        g.add_edge(a, t2);
        let paths = g.simple_paths(&[t1, t2], &|_| true, 10).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn target_can_be_intermediate() {
        // a -> t1 -> t2, both targets: 2 paths (a,t1) and (a,t1,t2).
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let t1 = g.add_host("t1");
        let t2 = g.add_host("t2");
        g.add_entry(a);
        g.add_edge(a, t1);
        g.add_edge(t1, t2);
        let paths = g.simple_paths(&[t1, t2], &|_| true, 10).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn cycles_do_not_loop() {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        let t = g.add_host("t");
        g.add_entry(a);
        g.add_edge(a, b);
        g.add_edge(b, a); // cycle
        g.add_edge(b, t);
        let paths = g.simple_paths(&[t], &|_| true, 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn max_paths_overflow_returns_none() {
        let (g, _, db) = case_study_like();
        assert!(g.simple_paths(&[db], &|_| true, 3).is_none());
    }

    #[test]
    fn entry_that_is_target_yields_unit_path() {
        let mut g = AttackGraph::new();
        let t = g.add_host("t");
        g.add_entry(t);
        let paths = g.simple_paths(&[t], &|_| true, 10).unwrap();
        assert_eq!(paths, vec![vec![t]]);
    }

    #[test]
    #[should_panic(expected = "self edges")]
    fn self_edge_panics() {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        g.add_edge(a, a);
    }

    #[test]
    fn entry_mask_selects_by_position() {
        let (g, hosts, db) = case_study_like();
        let (dns, web1, web2) = (hosts[0], hosts[1], hosts[2]);
        assert_eq!(g.entries(), &[dns, web1, web2]);
        // Full mask: identical entry set, identical paths.
        let full = g.with_entry_mask(&[true, true, true]);
        assert_eq!(full.entries(), g.entries());
        assert_eq!(full.simple_paths(&[db], &|_| true, 1000).unwrap().len(), 8);
        // Partial mask: only the webs remain (4 length-3 paths).
        let webs = g.with_entry_mask(&[false, true, true]);
        assert_eq!(webs.entries(), &[web1, web2]);
        let paths = webs.simple_paths(&[db], &|_| true, 1000).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.len() == 3));
        // Empty mask: no entries, no paths, hosts untouched.
        let none = g.with_entry_mask(&[false, false, false]);
        assert!(none.entries().is_empty());
        assert!(none
            .simple_paths(&[db], &|_| true, 1000)
            .unwrap()
            .is_empty());
        assert_eq!(none.host_count(), g.host_count());
    }

    #[test]
    #[should_panic(expected = "one mask slot per entry host")]
    fn entry_mask_length_mismatch_panics() {
        let (g, ..) = case_study_like();
        let _ = g.with_entry_mask(&[true]);
    }

    #[test]
    fn duplicate_edges_and_entries_are_idempotent() {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_entry(a);
        g.add_entry(a);
        assert_eq!(g.successors(a).len(), 1);
        assert_eq!(g.entries().len(), 1);
    }
}
