//! Phase-1 automation: generating the upper-layer attack graph from a
//! zone/firewall description of the enterprise network.
//!
//! The paper's example network (its Figure 2) is segmented by an external
//! and an internal firewall into DMZs and an intranet; reachability between
//! hosts is what the firewalls allow. [`TopologyBuilder`] captures exactly
//! that vocabulary — zones, hosts in zones, allow-rules between zones, and
//! internet exposure — and compiles it into an [`AttackGraph`].

use std::collections::HashMap;

use crate::graph::{AttackGraph, HostId};

/// Identifier of a network zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZoneId(usize);

/// Builder translating a zone/firewall description into an attack graph.
///
/// # Examples
///
/// The paper's segmentation (two DMZs + intranet tiers):
///
/// ```
/// use redeval_harm::topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let dmz_dns = b.zone("dmz-dns");
/// let dmz_web = b.zone("dmz-web");
/// let intranet = b.zone("intranet");
/// let db_net = b.zone("db-net");
///
/// let dns = b.host("dns1", dmz_dns);
/// let web1 = b.host("web1", dmz_web);
/// let web2 = b.host("web2", dmz_web);
/// let app = b.host("app1", intranet);
/// let db = b.host("db1", db_net);
///
/// b.expose_to_internet(dmz_dns);
/// b.expose_to_internet(dmz_web);
/// b.allow(dmz_dns, dmz_web);
/// b.allow(dmz_web, intranet);
/// b.allow(intranet, db_net);
///
/// let g = b.build();
/// assert_eq!(g.entries().len(), 3); // dns1, web1, web2
/// assert!(g.successors(web1).contains(&app));
/// assert!(!g.successors(web1).contains(&db)); // firewalled off
/// # let _ = (dns, web2, db);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    zones: Vec<String>,
    hosts: Vec<(String, ZoneId)>,
    /// Allowed zone-to-zone flows (directed).
    rules: Vec<(ZoneId, ZoneId)>,
    /// Zones reachable from the internet.
    exposed: Vec<ZoneId>,
    /// Whether hosts within one zone can reach each other.
    intra_zone: bool,
}

impl TopologyBuilder {
    /// Creates an empty builder. Intra-zone reachability is off by
    /// default (servers of one tier rarely attack each other usefully);
    /// enable it with [`allow_intra_zone`](Self::allow_intra_zone).
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Declares a network zone (subnet / security domain).
    pub fn zone(&mut self, name: impl Into<String>) -> ZoneId {
        self.zones.push(name.into());
        ZoneId(self.zones.len() - 1)
    }

    /// Places a host in a zone.
    ///
    /// # Panics
    ///
    /// Panics on a foreign zone id.
    pub fn host(&mut self, name: impl Into<String>, zone: ZoneId) -> HostId {
        assert!(zone.0 < self.zones.len(), "unknown zone");
        self.hosts.push((name.into(), zone));
        // Host ids are assigned densely in insertion order, matching the
        // ids the compiled AttackGraph will hand out.
        HostId(self.hosts.len() - 1)
    }

    /// Allows traffic from every host of `from` to every host of `to`
    /// (a firewall accept rule). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics on foreign zone ids.
    pub fn allow(&mut self, from: ZoneId, to: ZoneId) {
        assert!(
            from.0 < self.zones.len() && to.0 < self.zones.len(),
            "unknown zone"
        );
        if !self.rules.contains(&(from, to)) {
            self.rules.push((from, to));
        }
    }

    /// Marks a zone as reachable from the internet (the external
    /// firewall forwards to it). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics on a foreign zone id.
    pub fn expose_to_internet(&mut self, zone: ZoneId) {
        assert!(zone.0 < self.zones.len(), "unknown zone");
        if !self.exposed.contains(&zone) {
            self.exposed.push(zone);
        }
    }

    /// Also connects hosts **within** each zone to each other (lateral
    /// movement inside a subnet).
    pub fn allow_intra_zone(&mut self) {
        self.intra_zone = true;
    }

    /// Compiles the description into an [`AttackGraph`].
    pub fn build(&self) -> AttackGraph {
        let mut g = AttackGraph::new();
        let mut by_zone: HashMap<usize, Vec<HostId>> = HashMap::new();
        for (name, zone) in &self.hosts {
            let h = g.add_host(name.clone());
            by_zone.entry(zone.0).or_default().push(h);
        }
        for zone in &self.exposed {
            for &h in by_zone.get(&zone.0).into_iter().flatten() {
                g.add_entry(h);
            }
        }
        for &(from, to) in &self.rules {
            let (Some(fs), Some(ts)) = (by_zone.get(&from.0), by_zone.get(&to.0)) else {
                continue;
            };
            for &f in fs {
                for &t in ts {
                    if f != t {
                        g.add_edge(f, t);
                    }
                }
            }
        }
        if self.intra_zone {
            for hosts in by_zone.values() {
                for &a in hosts {
                    for &b in hosts {
                        if a != b {
                            g.add_edge(a, b);
                        }
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like() -> (AttackGraph, Vec<HostId>) {
        let mut b = TopologyBuilder::new();
        let dmz_dns = b.zone("dmz-dns");
        let dmz_web = b.zone("dmz-web");
        let intranet = b.zone("intranet");
        let db_net = b.zone("db");
        let dns = b.host("dns1", dmz_dns);
        let web1 = b.host("web1", dmz_web);
        let web2 = b.host("web2", dmz_web);
        let app1 = b.host("app1", intranet);
        let app2 = b.host("app2", intranet);
        let db = b.host("db1", db_net);
        b.expose_to_internet(dmz_dns);
        b.expose_to_internet(dmz_web);
        b.allow(dmz_dns, dmz_web);
        b.allow(dmz_web, intranet);
        b.allow(intranet, db_net);
        (b.build(), vec![dns, web1, web2, app1, app2, db])
    }

    #[test]
    fn reproduces_paper_topology() {
        let (g, hosts) = paper_like();
        let db = hosts[5];
        // 8 attack paths, as in the paper's Figure 3(a).
        let paths = g.simple_paths(&[db], &|_| true, 100).unwrap();
        assert_eq!(paths.len(), 8);
        assert_eq!(g.entries().len(), 3);
    }

    #[test]
    fn firewall_blocks_skip_connections() {
        let (g, hosts) = paper_like();
        let (web1, db) = (hosts[1], hosts[5]);
        assert!(!g.successors(web1).contains(&db));
    }

    #[test]
    fn host_ids_match_compiled_graph() {
        let mut b = TopologyBuilder::new();
        let z = b.zone("z");
        let a = b.host("a", z);
        let c = b.host("c", z);
        let g = b.build();
        assert_eq!(g.host_name(a), "a");
        assert_eq!(g.host_name(c), "c");
    }

    #[test]
    fn intra_zone_adds_lateral_edges() {
        let mut b = TopologyBuilder::new();
        let z = b.zone("z");
        let a = b.host("a", z);
        let c = b.host("c", z);
        b.expose_to_internet(z);
        let g = b.build();
        assert!(g.successors(a).is_empty());

        let mut b2 = TopologyBuilder::new();
        let z2 = b2.zone("z");
        let a2 = b2.host("a", z2);
        let c2 = b2.host("c", z2);
        b2.expose_to_internet(z2);
        b2.allow_intra_zone();
        let g2 = b2.build();
        assert!(g2.successors(a2).contains(&c2));
        assert!(g2.successors(c2).contains(&a2));
        let _ = (a, c);
    }

    #[test]
    fn self_rule_is_harmless_without_intra_zone() {
        let mut b = TopologyBuilder::new();
        let z = b.zone("z");
        let a = b.host("a", z);
        b.allow(z, z); // every pair distinct -> no self edge
        let g = b.build();
        assert!(g.successors(a).is_empty());
    }

    #[test]
    fn empty_zone_rules_are_skipped() {
        let mut b = TopologyBuilder::new();
        let z1 = b.zone("full");
        let z2 = b.zone("empty");
        let a = b.host("a", z1);
        b.allow(z1, z2);
        b.allow(z2, z1);
        let g = b.build();
        assert!(g.successors(a).is_empty());
    }
}
