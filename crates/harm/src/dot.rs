//! Graphviz DOT export of HARMs (upper layer + per-host trees).

use std::fmt::Write as _;

use crate::tree::AttackTree;
use crate::Harm;

impl Harm {
    /// Renders the two-layer HARM as Graphviz DOT: the upper-layer attack
    /// graph with the attacker node, plus one cluster per exploitable host
    /// showing its attack tree (the paper's Figure 3 layout).
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_harm::{AttackGraph, AttackTree, Harm, Vulnerability};
    ///
    /// let mut g = AttackGraph::new();
    /// let h = g.add_host("web");
    /// g.add_entry(h);
    /// let t = AttackTree::leaf(Vulnerability::new("CVE-1", 10.0, 1.0));
    /// let harm = Harm::new(g, vec![Some(t)], vec![h]);
    /// assert!(harm.to_dot().contains("attacker"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph harm {{");
        let _ = writeln!(out, "  compound=true;");
        let _ = writeln!(
            out,
            "  attacker [shape=diamond, style=filled, fillcolor=indianred, label=\"A\"];"
        );
        for h in self.graph().hosts() {
            let name = self.graph().host_name(h);
            let style = if self.is_exploitable(h) {
                "solid"
            } else {
                "dashed"
            };
            let shape = if self.targets().contains(&h) {
                "doublecircle"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  \"{name}\" [shape={shape}, style={style}];");
        }
        for &e in self.graph().entries() {
            let _ = writeln!(out, "  attacker -> \"{}\";", self.graph().host_name(e));
        }
        for h in self.graph().hosts() {
            for &s in self.graph().successors(h) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    self.graph().host_name(h),
                    self.graph().host_name(s)
                );
            }
        }
        // Lower layer: one cluster per exploitable host.
        for h in self.graph().hosts() {
            let Some(tree) = self.tree(h) else { continue };
            let name = self.graph().host_name(h);
            let _ = writeln!(out, "  subgraph \"cluster_{name}\" {{");
            let _ = writeln!(out, "    label=\"AT: {name}\";");
            let mut counter = 0usize;
            let root = write_tree(&mut out, name, tree, &mut counter);
            let _ = writeln!(out, "  }}");
            let _ = writeln!(out, "  \"{name}\" -> \"{root}\" [style=dotted];");
        }
        out.push_str("}\n");
        out
    }
}

/// Writes one attack-tree node and its descendants; returns the DOT node id.
fn write_tree(out: &mut String, host: &str, tree: &AttackTree, counter: &mut usize) -> String {
    let id = format!("{host}_n{counter}");
    *counter += 1;
    match tree {
        AttackTree::Leaf(v) => {
            let _ = writeln!(
                out,
                "    \"{id}\" [shape=box, label=\"{}\\nimp {:.1} / p {:.2}\"];",
                v.id, v.impact, v.probability
            );
        }
        AttackTree::And(cs) => {
            let _ = writeln!(out, "    \"{id}\" [shape=triangle, label=\"AND\"];");
            for c in cs {
                let cid = write_tree(out, host, c, counter);
                let _ = writeln!(out, "    \"{id}\" -> \"{cid}\";");
            }
        }
        AttackTree::Or(cs) => {
            let _ = writeln!(out, "    \"{id}\" [shape=invtriangle, label=\"OR\"];");
            for c in cs {
                let cid = write_tree(out, host, c, counter);
                let _ = writeln!(out, "    \"{id}\" -> \"{cid}\";");
            }
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use crate::{AttackGraph, AttackTree, Harm, Vulnerability};

    #[test]
    fn dot_renders_layers() {
        let mut g = AttackGraph::new();
        let a = g.add_host("web");
        let b = g.add_host("db");
        g.add_entry(a);
        g.add_edge(a, b);
        let tree = AttackTree::or(vec![
            AttackTree::leaf(Vulnerability::new("CVE-1", 10.0, 1.0)),
            AttackTree::and(vec![
                AttackTree::leaf(Vulnerability::new("CVE-2", 2.9, 1.0)),
                AttackTree::leaf(Vulnerability::new("CVE-3", 10.0, 0.39)),
            ]),
        ]);
        let harm = Harm::new(
            g,
            vec![
                Some(tree),
                Some(AttackTree::leaf(Vulnerability::new("CVE-4", 10.0, 1.0))),
            ],
            vec![b],
        );
        let dot = harm.to_dot();
        for needle in [
            "attacker",
            "cluster_web",
            "cluster_db",
            "AND",
            "OR",
            "CVE-3",
            "doublecircle",
        ] {
            assert!(dot.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn unexploitable_host_has_no_cluster() {
        let mut g = AttackGraph::new();
        let a = g.add_host("h");
        g.add_entry(a);
        let harm = Harm::new(g, vec![None], vec![a]);
        let dot = harm.to_dot();
        assert!(!dot.contains("cluster_h"));
        assert!(dot.contains("dashed"));
    }
}
