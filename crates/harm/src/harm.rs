//! The two-layer HARM and its metric evaluation.

use crate::graph::{AttackGraph, HostId};
use crate::metrics::{AspStrategy, MetricsConfig, SecurityMetrics};
use crate::tree::AttackTree;
use crate::vuln::Vulnerability;

/// One enumerated attack path with its aggregated impact and probability.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackPath {
    /// The hosts along the path (entry first, target last).
    pub hosts: Vec<HostId>,
    /// `aim_ap` — sum of host impacts.
    pub impact: f64,
    /// `asp_ap` — product of host success probabilities.
    pub probability: f64,
}

/// A two-layer hierarchical attack representation model: an upper-layer
/// [`AttackGraph`] plus one lower-layer [`AttackTree`] per host.
///
/// Hosts whose tree is `None` (no exploitable vulnerability) are treated as
/// non-traversable, exactly like the paper's post-patch DNS server.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Harm {
    graph: AttackGraph,
    trees: Vec<Option<AttackTree>>,
    targets: Vec<HostId>,
}

impl Harm {
    /// Hosts-on-paths limit above which [`AspStrategy::Reliability`] falls
    /// back to [`AspStrategy::NoisyOrPaths`].
    pub const RELIABILITY_HOST_LIMIT: usize = 22;

    /// Assembles a HARM.
    ///
    /// # Panics
    ///
    /// Panics when `trees.len()` differs from the graph's host count, when
    /// `targets` is empty or contains a foreign id (model-construction
    /// errors).
    pub fn new(graph: AttackGraph, trees: Vec<Option<AttackTree>>, targets: Vec<HostId>) -> Self {
        assert_eq!(
            trees.len(),
            graph.host_count(),
            "one attack tree slot per host required"
        );
        assert!(!targets.is_empty(), "at least one target required");
        for t in &targets {
            assert!(t.index() < graph.host_count(), "unknown target host");
        }
        Harm {
            graph,
            trees,
            targets,
        }
    }

    /// The upper-layer attack graph.
    pub fn graph(&self) -> &AttackGraph {
        &self.graph
    }

    /// The attack tree of a host (`None` = not exploitable).
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn tree(&self, h: HostId) -> Option<&AttackTree> {
        self.trees[h.index()].as_ref()
    }

    /// The attack targets.
    pub fn targets(&self) -> &[HostId] {
        &self.targets
    }

    /// Whether a host is exploitable (has a live attack tree).
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn is_exploitable(&self, h: HostId) -> bool {
        self.trees[h.index()].is_some()
    }

    /// A new HARM with every vulnerability matching `patched` removed and
    /// the trees pruned (the paper's "after patch" model).
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_harm::{AttackGraph, AttackTree, Harm, Vulnerability};
    ///
    /// let mut g = AttackGraph::new();
    /// let h = g.add_host("host");
    /// g.add_entry(h);
    /// let tree = AttackTree::leaf(Vulnerability::new("CVE", 10.0, 1.0));
    /// let harm = Harm::new(g, vec![Some(tree)], vec![h]);
    /// let after = harm.patched(&|v| v.is_critical(8.0));
    /// assert!(!after.is_exploitable(h));
    /// ```
    pub fn patched(&self, patched: &dyn Fn(&Vulnerability) -> bool) -> Harm {
        let trees = self
            .trees
            .iter()
            .map(|t| t.as_ref().and_then(|tree| tree.without(patched)))
            .collect();
        Harm {
            graph: self.graph.clone(),
            trees,
            targets: self.targets.clone(),
        }
    }

    /// Convenience for the paper's policy: patch every vulnerability whose
    /// CVSS base score strictly exceeds `threshold`.
    pub fn patched_critical(&self, threshold: f64) -> Harm {
        self.patched(&move |v: &Vulnerability| v.is_critical(threshold))
    }

    /// A new HARM restricted to the entry hosts selected by `mask`
    /// (positions in [`AttackGraph::entries`] order); hosts, edges, trees
    /// and targets are untouched.
    ///
    /// This is the attacker-strategy hook: an adaptive adversary choosing
    /// which entry points to commit to re-masks one prebuilt HARM instead
    /// of rebuilding the graph. An all-false mask models an attacker with
    /// no foothold — zero paths, zero ASP.
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_harm::{AttackGraph, AttackTree, Harm, MetricsConfig, Vulnerability};
    ///
    /// let mut g = AttackGraph::new();
    /// let a = g.add_host("a");
    /// let b = g.add_host("b");
    /// g.add_entry(a);
    /// g.add_entry(b);
    /// let leaf = |p| Some(AttackTree::leaf(Vulnerability::new("v", 5.0, p)));
    /// let harm = Harm::new(g, vec![leaf(0.5), leaf(0.5)], vec![a, b]);
    /// let one = harm.with_entry_mask(&[true, false]);
    /// assert_eq!(one.metrics(&MetricsConfig::default()).attack_paths, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `mask.len()` differs from the graph's entry count.
    pub fn with_entry_mask(&self, mask: &[bool]) -> Harm {
        Harm {
            graph: self.graph.with_entry_mask(mask),
            trees: self.trees.clone(),
            targets: self.targets.clone(),
        }
    }

    /// Enumerates the attack paths with their impact/probability values.
    ///
    /// Returns `None` when more than `config.max_paths` paths exist.
    pub fn attack_paths(&self, config: &MetricsConfig) -> Option<Vec<AttackPath>> {
        let (paths, truncated) = self.attack_paths_truncated(config);
        if truncated {
            None
        } else {
            Some(paths)
        }
    }

    /// Like [`attack_paths`](Self::attack_paths) but keeps the first
    /// `config.max_paths` paths on overflow, flagged with `truncated`.
    pub fn attack_paths_truncated(&self, config: &MetricsConfig) -> (Vec<AttackPath>, bool) {
        let passable = |h: HostId| self.trees[h.index()].is_some();
        let (raw, truncated) =
            self.graph
                .simple_paths_truncated(&self.targets, &passable, config.max_paths);
        let paths = raw
            .into_iter()
            .map(|hosts| {
                let impact = hosts
                    .iter()
                    .map(|h| self.trees[h.index()].as_ref().expect("passable").impact())
                    .sum();
                let probability = hosts
                    .iter()
                    .map(|h| {
                        self.trees[h.index()]
                            .as_ref()
                            .expect("passable")
                            .probability(config.or_combine)
                    })
                    .product();
                AttackPath {
                    hosts,
                    impact,
                    probability,
                }
            })
            .collect();
        (paths, truncated)
    }

    /// Number of entry points: attacker-reachable hosts that are
    /// exploitable.
    pub fn entry_points(&self) -> usize {
        self.graph
            .entries()
            .iter()
            .filter(|h| self.trees[h.index()].is_some())
            .count()
    }

    /// Total number of exploitable vulnerabilities over all hosts
    /// (the paper's `NoEV`).
    pub fn exploitable_vulnerabilities(&self) -> usize {
        self.trees
            .iter()
            .filter_map(|t| t.as_ref())
            .map(AttackTree::leaf_count)
            .sum()
    }

    /// Computes the full metric suite.
    ///
    /// When path enumeration overflows `config.max_paths`, path-based
    /// metrics saturate: `attack_paths` reports the cap and AIM/ASP/risk
    /// are computed over the enumerated prefix (a lower bound).
    pub fn metrics(&self, config: &MetricsConfig) -> SecurityMetrics {
        let (paths, _truncated) = self.attack_paths_truncated(config);
        let noap = paths.len();
        let aim = paths.iter().map(|p| p.impact).fold(0.0, f64::max);
        let asp = self.network_asp(&paths, config);
        let risk = paths
            .iter()
            .map(|p| p.impact * p.probability)
            .fold(0.0, f64::max);
        let shortest = paths.iter().map(|p| p.hosts.len()).min();
        let mean_len = if paths.is_empty() {
            0.0
        } else {
            paths.iter().map(|p| p.hosts.len()).sum::<usize>() as f64 / paths.len() as f64
        };
        SecurityMetrics {
            attack_impact: aim,
            attack_success_probability: asp,
            exploitable_vulnerabilities: self.exploitable_vulnerabilities(),
            attack_paths: noap,
            entry_points: self.entry_points(),
            shortest_path_length: shortest,
            mean_path_length: mean_len,
            risk,
        }
    }

    /// Network-level ASP under the configured aggregation strategy.
    fn network_asp(&self, paths: &[AttackPath], config: &MetricsConfig) -> f64 {
        if paths.is_empty() {
            return 0.0;
        }
        match config.asp {
            AspStrategy::MaxPath => paths.iter().map(|p| p.probability).fold(0.0, f64::max),
            AspStrategy::NoisyOrPaths => {
                1.0 - paths.iter().map(|p| 1.0 - p.probability).product::<f64>()
            }
            AspStrategy::Reliability => self.reliability_asp(paths, config).unwrap_or_else(|| {
                1.0 - paths.iter().map(|p| 1.0 - p.probability).product::<f64>()
            }),
        }
    }

    /// Ranks exploitable hosts by their contribution to the network attack
    /// success probability: for each host, the drop in ASP when that host
    /// is hardened (made non-exploitable).
    ///
    /// This is the security analogue of a component-importance measure and
    /// directly answers the redundancy-design question "which server most
    /// enables attacks?". Hosts are returned with their ΔASP, sorted
    /// descending.
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_harm::{AttackGraph, AttackTree, Harm, MetricsConfig, Vulnerability};
    ///
    /// let mut g = AttackGraph::new();
    /// let web = g.add_host("web");
    /// let db = g.add_host("db");
    /// g.add_entry(web);
    /// g.add_edge(web, db);
    /// let leaf = |p| Some(AttackTree::leaf(Vulnerability::new("v", 5.0, p)));
    /// let harm = Harm::new(g, vec![leaf(0.9), leaf(0.5)], vec![db]);
    /// let ranked = harm.host_importance(&MetricsConfig::default());
    /// // Hardening either host on a single chain kills the only path.
    /// assert_eq!(ranked.len(), 2);
    /// assert!(ranked[0].1 > 0.0);
    /// ```
    pub fn host_importance(&self, config: &MetricsConfig) -> Vec<(HostId, f64)> {
        let base = self.metrics(config).attack_success_probability;
        let mut out: Vec<(HostId, f64)> = self
            .graph
            .hosts()
            .filter(|&h| self.is_exploitable(h))
            .map(|h| {
                let mut hardened = self.clone();
                hardened.trees[h.index()] = None;
                let asp = hardened.metrics(config).attack_success_probability;
                (h, base - asp)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite deltas"));
        out
    }

    /// Ranks vulnerabilities by their contribution to the network ASP:
    /// for each distinct vulnerability id, the ASP drop when that id is
    /// patched **everywhere** (redundant servers share CVEs, and a patch
    /// is rolled out fleet-wide).
    ///
    /// Returned sorted descending by ΔASP.
    pub fn vulnerability_importance(&self, config: &MetricsConfig) -> Vec<(String, f64)> {
        let base = self.metrics(config).attack_success_probability;
        let mut ids: Vec<String> = Vec::new();
        for h in self.graph.hosts() {
            if let Some(tree) = self.tree(h) {
                for v in tree.vulnerabilities() {
                    if !ids.contains(&v.id) {
                        ids.push(v.id.clone());
                    }
                }
            }
        }
        let mut out: Vec<(String, f64)> = ids
            .into_iter()
            .map(|id| {
                let target = id.clone();
                let patched = self.patched(&move |v: &Vulnerability| v.id == target);
                let asp = patched.metrics(config).attack_success_probability;
                (id, base - asp)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite deltas"));
        out
    }

    /// Greedy patch-priority schedule: repeatedly patches the single
    /// vulnerability (fleet-wide) whose removal lowers the network ASP
    /// the most, up to `budget` patches or until the ASP reaches zero.
    ///
    /// Returns `(vulnerability id, network ASP after applying it)` in
    /// application order — a concrete answer to "which patches first?"
    /// when time does not allow patching everything.
    pub fn greedy_patch_order(&self, config: &MetricsConfig, budget: usize) -> Vec<(String, f64)> {
        let mut current = self.clone();
        let mut out = Vec::new();
        for _ in 0..budget {
            let ranked = current.vulnerability_importance(config);
            let Some((best, delta)) = ranked.into_iter().next() else {
                break;
            };
            // Stop when no patch helps (ASP already minimal).
            let base = current.metrics(config).attack_success_probability;
            if base == 0.0 {
                break;
            }
            let target = best.clone();
            current = current.patched(&move |v: &Vulnerability| v.id == target);
            let asp = base - delta;
            out.push((best, asp));
        }
        out
    }

    /// Exact probability that at least one path is fully compromised,
    /// treating host compromises as independent Bernoulli trials.
    ///
    /// Returns `None` when more than
    /// [`RELIABILITY_HOST_LIMIT`](Self::RELIABILITY_HOST_LIMIT) hosts are
    /// involved.
    fn reliability_asp(&self, paths: &[AttackPath], config: &MetricsConfig) -> Option<f64> {
        let mut hosts: Vec<HostId> = Vec::new();
        for p in paths {
            for &h in &p.hosts {
                if !hosts.contains(&h) {
                    hosts.push(h);
                }
            }
        }
        let k = hosts.len();
        if k > Self::RELIABILITY_HOST_LIMIT {
            return None;
        }
        let idx_of = |h: HostId| hosts.iter().position(|&x| x == h).expect("collected");
        let path_masks: Vec<u32> = paths
            .iter()
            .map(|p| p.hosts.iter().fold(0u32, |m, &h| m | (1u32 << idx_of(h))))
            .collect();
        let probs: Vec<f64> = hosts
            .iter()
            .map(|h| {
                self.trees[h.index()]
                    .as_ref()
                    .expect("exploitable")
                    .probability(config.or_combine)
            })
            .collect();
        let mut total = 0.0;
        for subset in 0u32..(1u32 << k) {
            // P(subset of compromised hosts).
            let mut p = 1.0;
            for (i, &q) in probs.iter().enumerate() {
                if subset & (1 << i) != 0 {
                    p *= q;
                } else {
                    p *= 1.0 - q;
                }
                if p == 0.0 {
                    break;
                }
            }
            if p == 0.0 {
                continue;
            }
            if path_masks.iter().any(|&m| m & !subset == 0) {
                total += p;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OrCombine;

    fn v(id: &str, impact: f64, prob: f64) -> AttackTree {
        AttackTree::leaf(Vulnerability::new(id, impact, prob))
    }

    /// Entry -> mid -> target with simple probabilities.
    fn chain() -> (Harm, HostId, HostId, HostId) {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        let c = g.add_host("c");
        g.add_entry(a);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let harm = Harm::new(
            g,
            vec![
                Some(v("va", 4.0, 0.5)),
                Some(v("vb", 5.0, 0.5)),
                Some(v("vc", 6.0, 0.5)),
            ],
            vec![c],
        );
        (harm, a, b, c)
    }

    #[test]
    fn chain_metrics() {
        let (harm, ..) = chain();
        let m = harm.metrics(&MetricsConfig::default());
        assert_eq!(m.attack_paths, 1);
        assert_eq!(m.entry_points, 1);
        assert_eq!(m.exploitable_vulnerabilities, 3);
        assert!((m.attack_impact - 15.0).abs() < 1e-12);
        assert!((m.attack_success_probability - 0.125).abs() < 1e-12);
        assert_eq!(m.shortest_path_length, Some(3));
        assert!((m.risk - 15.0 * 0.125).abs() < 1e-12);
    }

    #[test]
    fn patching_middle_host_kills_path() {
        let (harm, _a, _b, _c) = chain();
        let after = harm.patched(&|vu| vu.id == "vb");
        let m = after.metrics(&MetricsConfig::default());
        assert_eq!(m.attack_paths, 0);
        assert_eq!(m.attack_impact, 0.0);
        assert_eq!(m.attack_success_probability, 0.0);
        assert_eq!(m.exploitable_vulnerabilities, 2);
        assert_eq!(m.shortest_path_length, None);
    }

    /// Two parallel two-hop paths sharing the target.
    fn diamond(p_mid: f64, p_tgt: f64) -> Harm {
        let mut g = AttackGraph::new();
        let m1 = g.add_host("m1");
        let m2 = g.add_host("m2");
        let t = g.add_host("t");
        g.add_entry(m1);
        g.add_entry(m2);
        g.add_edge(m1, t);
        g.add_edge(m2, t);
        Harm::new(
            g,
            vec![
                Some(v("v1", 1.0, p_mid)),
                Some(v("v2", 1.0, p_mid)),
                Some(v("vt", 1.0, p_tgt)),
            ],
            vec![t],
        )
    }

    #[test]
    fn asp_strategies_ordering() {
        let harm = diamond(0.5, 0.5);
        let base = MetricsConfig::default();
        let max = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::MaxPath,
                ..base
            })
            .attack_success_probability;
        let nor = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::NoisyOrPaths,
                ..base
            })
            .attack_success_probability;
        let rel = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::Reliability,
                ..base
            })
            .attack_success_probability;
        // Path prob = 0.25 each.
        assert!((max - 0.25).abs() < 1e-12);
        assert!((nor - (1.0 - 0.75 * 0.75)).abs() < 1e-12);
        // Exact: target AND (m1 OR m2) = 0.5 * 0.75.
        assert!((rel - 0.375).abs() < 1e-12);
        assert!(max <= rel && rel <= nor + 1e-12);
    }

    #[test]
    fn reliability_equals_noisy_or_for_disjoint_paths() {
        // Paths share no hosts: independence makes both formulas equal...
        // except NoisyOrPaths *is* exact for fully disjoint paths.
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        g.add_entry(a);
        g.add_entry(b);
        let harm = Harm::new(
            g,
            vec![Some(v("va", 1.0, 0.3)), Some(v("vb", 1.0, 0.4))],
            vec![a, b],
        );
        let nor = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::NoisyOrPaths,
                ..Default::default()
            })
            .attack_success_probability;
        let rel = harm
            .metrics(&MetricsConfig {
                asp: AspStrategy::Reliability,
                ..Default::default()
            })
            .attack_success_probability;
        assert!((nor - rel).abs() < 1e-12);
        assert!((rel - (1.0 - 0.7 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn entry_points_require_exploitability() {
        let (harm, _a, _b, _c) = chain();
        assert_eq!(harm.entry_points(), 1);
        let after = harm.patched(&|vu| vu.id == "va");
        assert_eq!(after.entry_points(), 0);
    }

    #[test]
    fn or_combine_propagates_to_paths() {
        // Host with two 0.5-vulns: Max -> 0.5, NoisyOr -> 0.75.
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        g.add_entry(a);
        let tree = AttackTree::or(vec![v("x", 1.0, 0.5), v("y", 1.0, 0.5)]);
        let harm = Harm::new(g, vec![Some(tree)], vec![a]);
        let m_max = harm.metrics(&MetricsConfig {
            or_combine: OrCombine::Max,
            asp: AspStrategy::MaxPath,
            ..Default::default()
        });
        let m_nor = harm.metrics(&MetricsConfig {
            or_combine: OrCombine::NoisyOr,
            asp: AspStrategy::MaxPath,
            ..Default::default()
        });
        assert!((m_max.attack_success_probability - 0.5).abs() < 1e-12);
        assert!((m_nor.attack_success_probability - 0.75).abs() < 1e-12);
    }

    #[test]
    fn host_importance_ranks_bottleneck_highest() {
        // Two parallel mids feeding one target: the target is the
        // bottleneck — hardening it kills everything, hardening one mid
        // only halves the options.
        let harm = diamond(0.5, 0.5);
        let ranked = harm.host_importance(&MetricsConfig::default());
        assert_eq!(ranked.len(), 3);
        let target_name = harm.graph().host_name(ranked[0].0).to_string();
        assert_eq!(target_name, "t");
        // Hardening the target removes all paths: ΔASP = full ASP.
        let full = harm
            .metrics(&MetricsConfig::default())
            .attack_success_probability;
        assert!((ranked[0].1 - full).abs() < 1e-12);
        // Mids tie and contribute less.
        assert!((ranked[1].1 - ranked[2].1).abs() < 1e-12);
        assert!(ranked[1].1 < ranked[0].1);
    }

    #[test]
    fn host_importance_is_zero_off_path() {
        // A host not on any attack path has zero importance.
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let t = g.add_host("t");
        let stray = g.add_host("stray");
        g.add_entry(a);
        g.add_edge(a, t);
        g.add_edge(t, stray); // beyond the target
        let harm = Harm::new(
            g,
            vec![
                Some(v("va", 1.0, 0.5)),
                Some(v("vt", 1.0, 0.5)),
                Some(v("vs", 1.0, 0.9)),
            ],
            vec![t],
        );
        let ranked = harm.host_importance(&MetricsConfig::default());
        let stray_delta = ranked.iter().find(|(h, _)| *h == stray).unwrap().1;
        assert_eq!(stray_delta, 0.0);
    }

    #[test]
    fn vulnerability_importance_targets_choke_point() {
        let (harm, ..) = chain();
        let ranked = harm.vulnerability_importance(&MetricsConfig::default());
        assert_eq!(ranked.len(), 3);
        // On a single chain, patching any host's only vuln kills the path:
        // all three tie at ΔASP = full ASP.
        let full = harm
            .metrics(&MetricsConfig::default())
            .attack_success_probability;
        for (_, delta) in &ranked {
            assert!((delta - full).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_patch_order_drives_asp_to_zero() {
        let harm = diamond(0.8, 0.9);
        let order = harm.greedy_patch_order(&MetricsConfig::default(), 10);
        assert!(!order.is_empty());
        // First pick is the target's vulnerability (kills everything).
        assert_eq!(order[0].0, "vt");
        assert_eq!(order[0].1, 0.0);
        assert_eq!(order.len(), 1); // no further patch needed
    }

    #[test]
    fn greedy_patch_order_respects_budget() {
        // Two disjoint entry->target chains: two patches needed, budget 1.
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        g.add_entry(a);
        g.add_entry(b);
        let harm = Harm::new(
            g,
            vec![Some(v("va", 1.0, 0.9)), Some(v("vb", 1.0, 0.4))],
            vec![a, b],
        );
        let order = harm.greedy_patch_order(&MetricsConfig::default(), 1);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].0, "va"); // the likelier chain first
        assert!(order[0].1 > 0.0); // vb still exploitable
        let full = harm.greedy_patch_order(&MetricsConfig::default(), 5);
        assert_eq!(full.len(), 2);
        assert_eq!(full[1].1, 0.0);
    }

    #[test]
    fn shared_cve_patched_fleet_wide() {
        // The same CVE id on two hosts: one "patch" removes both.
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let b = g.add_host("b");
        g.add_entry(a);
        g.add_entry(b);
        let harm = Harm::new(
            g,
            vec![Some(v("CVE-SAME", 1.0, 0.5)), Some(v("CVE-SAME", 1.0, 0.5))],
            vec![a, b],
        );
        let order = harm.greedy_patch_order(&MetricsConfig::default(), 5);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].1, 0.0);
    }

    #[test]
    fn entry_mask_full_is_identity_for_metrics() {
        let harm = diamond(0.5, 0.5);
        let config = MetricsConfig::default();
        let base = harm.metrics(&config);
        let masked = harm.with_entry_mask(&[true, true]).metrics(&config);
        assert_eq!(base, masked);
    }

    #[test]
    fn entry_mask_partial_restricts_paths() {
        let harm = diamond(0.5, 0.5);
        let config = MetricsConfig::default();
        let m = harm.with_entry_mask(&[true, false]).metrics(&config);
        assert_eq!(m.attack_paths, 1);
        assert_eq!(m.entry_points, 1);
        // One two-hop path: ASP = 0.25 under every strategy.
        assert!((m.attack_success_probability - 0.25).abs() < 1e-12);
        // Trees are untouched: NoEV counts all hosts, masked or not.
        assert_eq!(m.exploitable_vulnerabilities, 3);
    }

    #[test]
    fn entry_mask_empty_zeroes_path_metrics() {
        let harm = diamond(0.5, 0.5);
        let config = MetricsConfig::default();
        let m = harm.with_entry_mask(&[false, false]).metrics(&config);
        assert_eq!(m.attack_paths, 0);
        assert_eq!(m.entry_points, 0);
        assert_eq!(m.attack_success_probability, 0.0);
        assert_eq!(m.attack_impact, 0.0);
        assert_eq!(m.shortest_path_length, None);
    }

    #[test]
    fn entry_mask_composes_with_patching_in_either_order() {
        let harm = diamond(0.8, 0.9);
        let config = MetricsConfig::default();
        let patch = |vu: &Vulnerability| vu.id == "v2";
        let a = harm.with_entry_mask(&[true, false]).patched(&patch);
        let b = harm.patched(&patch).with_entry_mask(&[true, false]);
        assert_eq!(a.metrics(&config), b.metrics(&config));
    }

    #[test]
    #[should_panic(expected = "one attack tree slot per host")]
    fn tree_count_mismatch_panics() {
        let mut g = AttackGraph::new();
        let a = g.add_host("a");
        let _ = Harm::new(g, vec![], vec![a]);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panics() {
        let mut g = AttackGraph::new();
        let _a = g.add_host("a");
        let _ = Harm::new(g, vec![None], vec![]);
    }
}
