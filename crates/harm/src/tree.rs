//! Attack trees — the lower layer of the HARM.

use crate::metrics::OrCombine;
use crate::Vulnerability;

/// An attack tree: AND/OR combinations of vulnerabilities describing how a
/// single host is compromised.
///
/// Evaluation follows the paper (and its references):
///
/// * **impact**: leaf → its impact; AND → sum of children; OR → max of
///   children;
/// * **probability**: leaf → its probability; AND → product of children;
///   OR → configurable ([`OrCombine::Max`] or [`OrCombine::NoisyOr`]).
///
/// # Examples
///
/// The paper's web-server tree (`max(v1,v2,v3, v4+v5) = 12.9`):
///
/// ```
/// use redeval_harm::{AttackTree, Vulnerability};
///
/// let t = AttackTree::or(vec![
///     AttackTree::leaf(Vulnerability::new("v1web", 10.0, 1.0)),
///     AttackTree::leaf(Vulnerability::new("v2web", 10.0, 1.0)),
///     AttackTree::leaf(Vulnerability::new("v3web", 10.0, 1.0)),
///     AttackTree::and(vec![
///         AttackTree::leaf(Vulnerability::new("v4web", 2.9, 1.0)),
///         AttackTree::leaf(Vulnerability::new("v5web", 10.0, 0.39)),
///     ]),
/// ]);
/// assert_eq!(t.impact(), 12.9);
/// assert_eq!(t.leaf_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AttackTree {
    /// A single vulnerability.
    Leaf(Vulnerability),
    /// All children must be exploited.
    And(Vec<AttackTree>),
    /// Any child suffices.
    Or(Vec<AttackTree>),
}

impl AttackTree {
    /// A leaf node.
    pub fn leaf(v: Vulnerability) -> Self {
        AttackTree::Leaf(v)
    }

    /// An AND gate.
    ///
    /// # Panics
    ///
    /// Panics when `children` is empty (a gate without children has no
    /// defined semantics).
    pub fn and(children: Vec<AttackTree>) -> Self {
        assert!(!children.is_empty(), "AND gate needs at least one child");
        AttackTree::And(children)
    }

    /// An OR gate.
    ///
    /// # Panics
    ///
    /// Panics when `children` is empty.
    pub fn or(children: Vec<AttackTree>) -> Self {
        assert!(!children.is_empty(), "OR gate needs at least one child");
        AttackTree::Or(children)
    }

    /// The host-level attack impact (AND = sum, OR = max).
    pub fn impact(&self) -> f64 {
        match self {
            AttackTree::Leaf(v) => v.impact,
            AttackTree::And(cs) => cs.iter().map(AttackTree::impact).sum(),
            AttackTree::Or(cs) => cs
                .iter()
                .map(AttackTree::impact)
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// The host-level attack success probability.
    ///
    /// AND gates multiply; OR gates combine according to `combine`.
    pub fn probability(&self, combine: OrCombine) -> f64 {
        match self {
            AttackTree::Leaf(v) => v.probability,
            AttackTree::And(cs) => cs.iter().map(|c| c.probability(combine)).product(),
            AttackTree::Or(cs) => {
                let ps = cs.iter().map(|c| c.probability(combine));
                match combine {
                    OrCombine::Max => ps.fold(0.0, f64::max),
                    OrCombine::NoisyOr => 1.0 - ps.map(|p| 1.0 - p).product::<f64>(),
                }
            }
        }
    }

    /// Number of vulnerability leaves (the per-host `NoEV` contribution).
    pub fn leaf_count(&self) -> usize {
        match self {
            AttackTree::Leaf(_) => 1,
            AttackTree::And(cs) | AttackTree::Or(cs) => cs.iter().map(AttackTree::leaf_count).sum(),
        }
    }

    /// Iterates over all vulnerabilities in the tree (pre-order).
    pub fn vulnerabilities(&self) -> Vec<&Vulnerability> {
        let mut out = Vec::new();
        self.collect_vulns(&mut out);
        out
    }

    fn collect_vulns<'a>(&'a self, out: &mut Vec<&'a Vulnerability>) {
        match self {
            AttackTree::Leaf(v) => out.push(v),
            AttackTree::And(cs) | AttackTree::Or(cs) => {
                for c in cs {
                    c.collect_vulns(out);
                }
            }
        }
    }

    /// Removes every vulnerability for which `patched` returns true and
    /// prunes the tree: an AND gate dies with any dead child, an OR gate
    /// dies when all children die. Returns `None` when the whole tree dies
    /// (the host stops being exploitable).
    ///
    /// # Examples
    ///
    /// ```
    /// use redeval_harm::{AttackTree, Vulnerability};
    ///
    /// let t = AttackTree::or(vec![
    ///     AttackTree::leaf(Vulnerability::new("critical", 10.0, 1.0)),
    ///     AttackTree::leaf(Vulnerability::new("minor", 2.9, 1.0)),
    /// ]);
    /// let after = t.without(&|v| v.is_critical(8.0)).unwrap();
    /// assert_eq!(after.leaf_count(), 1);
    /// assert_eq!(after.impact(), 2.9);
    /// ```
    pub fn without(&self, patched: &dyn Fn(&Vulnerability) -> bool) -> Option<AttackTree> {
        match self {
            AttackTree::Leaf(v) => {
                if patched(v) {
                    None
                } else {
                    Some(AttackTree::Leaf(v.clone()))
                }
            }
            AttackTree::And(cs) => {
                let pruned: Option<Vec<AttackTree>> =
                    cs.iter().map(|c| c.without(patched)).collect();
                pruned.map(AttackTree::And)
            }
            AttackTree::Or(cs) => {
                let pruned: Vec<AttackTree> =
                    cs.iter().filter_map(|c| c.without(patched)).collect();
                if pruned.is_empty() {
                    None
                } else {
                    Some(AttackTree::Or(pruned))
                }
            }
        }
    }

    /// Depth of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            AttackTree::Leaf(_) => 1,
            AttackTree::And(cs) | AttackTree::Or(cs) => {
                1 + cs.iter().map(AttackTree::depth).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: &str, impact: f64, prob: f64) -> AttackTree {
        AttackTree::leaf(Vulnerability::new(id, impact, prob))
    }

    /// The paper's web-server tree.
    fn web_tree() -> AttackTree {
        AttackTree::or(vec![
            v("v1web", 10.0, 1.0),
            v("v2web", 10.0, 1.0),
            v("v3web", 10.0, 1.0),
            AttackTree::and(vec![v("v4web", 2.9, 1.0), v("v5web", 10.0, 0.39)]),
        ])
    }

    /// The paper's application-server tree.
    fn app_tree() -> AttackTree {
        AttackTree::or(vec![
            v("v1app", 10.0, 1.0),
            v("v2app", 10.0, 1.0),
            v("v3app", 10.0, 1.0),
            AttackTree::and(vec![v("v4app", 6.4, 1.0), v("v5app", 10.0, 0.39)]),
        ])
    }

    #[test]
    fn paper_web_impact_is_12_9() {
        assert!((web_tree().impact() - 12.9).abs() < 1e-12);
    }

    #[test]
    fn paper_app_impact_is_16_4() {
        assert!((app_tree().impact() - 16.4).abs() < 1e-12);
    }

    #[test]
    fn probability_before_patch_is_one() {
        assert_eq!(web_tree().probability(OrCombine::Max), 1.0);
        assert_eq!(web_tree().probability(OrCombine::NoisyOr), 1.0);
    }

    #[test]
    fn patching_critical_leaves_and_pair() {
        let after = web_tree().without(&|vu| vu.is_critical(8.0)).unwrap();
        assert_eq!(after.leaf_count(), 2);
        assert!((after.impact() - 12.9).abs() < 1e-12);
        assert!((after.probability(OrCombine::Max) - 0.39).abs() < 1e-12);
    }

    #[test]
    fn and_gate_dies_with_any_child() {
        let t = AttackTree::and(vec![v("a", 5.0, 1.0), v("b", 5.0, 1.0)]);
        assert!(t.without(&|vu| vu.id == "a").is_none());
        assert!(t.without(&|vu| vu.id == "c").is_some());
    }

    #[test]
    fn or_gate_survives_partial_patch() {
        let t = AttackTree::or(vec![v("a", 5.0, 1.0), v("b", 3.0, 0.5)]);
        let after = t.without(&|vu| vu.id == "a").unwrap();
        assert_eq!(after.impact(), 3.0);
        let dead = t.without(&|_| true);
        assert!(dead.is_none());
    }

    #[test]
    fn noisy_or_exceeds_max() {
        let t = AttackTree::or(vec![v("a", 1.0, 0.5), v("b", 1.0, 0.5)]);
        assert_eq!(t.probability(OrCombine::Max), 0.5);
        assert!((t.probability(OrCombine::NoisyOr) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nested_depth_and_counts() {
        let t = AttackTree::or(vec![
            AttackTree::and(vec![v("a", 1.0, 1.0), v("b", 1.0, 1.0)]),
            v("c", 2.0, 1.0),
        ]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.vulnerabilities().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_gate_panics() {
        let _ = AttackTree::or(vec![]);
    }
}
