//! Security-metric definitions and aggregation configuration.

use std::fmt;

/// How OR gates in attack trees combine child probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrCombine {
    /// The attacker takes the single best option: `max(p_i)`.
    Max,
    /// Independent attempts: `1 − Π(1 − p_i)` (noisy-or).
    #[default]
    NoisyOr,
}

/// How the network-level attack success probability aggregates over attack
/// paths.
///
/// The paper's references (\[18\],\[20\]) define `ASP = max over paths`, but
/// its Figure 6(b) shows redundancy *increasing* ASP, which only holds for
/// the multi-path aggregations; see `EXPERIMENTS.md` for the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AspStrategy {
    /// `max_ap Π_{h∈ap} p_h` — the single most likely path.
    MaxPath,
    /// `1 − Π_ap (1 − asp_ap)` — paths treated as independent attempts.
    #[default]
    NoisyOrPaths,
    /// Exact network reliability: the probability that at least one attack
    /// path has **all** of its hosts compromised, with host compromises as
    /// independent Bernoulli events. Falls back to
    /// [`NoisyOrPaths`](Self::NoisyOrPaths) when more than
    /// [`RELIABILITY_HOST_LIMIT`](crate::Harm::RELIABILITY_HOST_LIMIT)
    /// distinct hosts appear on attack paths.
    Reliability,
}

/// Configuration for [`crate::Harm::metrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsConfig {
    /// OR-gate combination inside attack trees.
    pub or_combine: OrCombine,
    /// Across-path aggregation for ASP.
    pub asp: AspStrategy,
    /// Upper bound on enumerated attack paths.
    pub max_paths: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            or_combine: OrCombine::default(),
            asp: AspStrategy::default(),
            max_paths: 1_000_000,
        }
    }
}

/// The paper's five security metrics plus extension metrics.
///
/// Produced by [`crate::Harm::metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityMetrics {
    /// `AIM` — attack impact at the network level (max over paths of the
    /// summed host impacts). 0.0 when no attack path exists.
    pub attack_impact: f64,
    /// `ASP` — attack success probability at the network level.
    pub attack_success_probability: f64,
    /// `NoEV` — total number of exploitable vulnerabilities over all hosts.
    pub exploitable_vulnerabilities: usize,
    /// `NoAP` — number of attack paths.
    pub attack_paths: usize,
    /// `NoEP` — number of entry points (attacker-reachable exploitable
    /// hosts).
    pub entry_points: usize,
    /// Extension: number of hops on the shortest attack path.
    pub shortest_path_length: Option<usize>,
    /// Extension: mean number of hops over all attack paths (0.0 if none).
    pub mean_path_length: f64,
    /// Extension: maximal per-path risk `aim_ap · asp_ap`.
    pub risk: f64,
}

impl fmt::Display for SecurityMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AIM={:.1} ASP={:.3} NoEV={} NoAP={} NoEP={}",
            self.attack_impact,
            self.attack_success_probability,
            self.exploitable_vulnerabilities,
            self.attack_paths,
            self.entry_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_noisy_or() {
        let c = MetricsConfig::default();
        assert_eq!(c.or_combine, OrCombine::NoisyOr);
        assert_eq!(c.asp, AspStrategy::NoisyOrPaths);
    }

    #[test]
    fn display_shows_paper_names() {
        let m = SecurityMetrics {
            attack_impact: 52.2,
            attack_success_probability: 1.0,
            exploitable_vulnerabilities: 26,
            attack_paths: 8,
            entry_points: 3,
            shortest_path_length: Some(3),
            mean_path_length: 3.5,
            risk: 52.2,
        };
        let s = m.to_string();
        assert!(s.contains("AIM=52.2"));
        assert!(s.contains("NoAP=8"));
    }
}
