//! Vulnerabilities: the leaves of attack trees.

use std::fmt;

use redeval_cvss::v2;

/// A vulnerability with the two quantities the paper's analysis uses
/// (attack impact and attack success probability) plus optional CVSS
/// provenance.
///
/// # Examples
///
/// ```
/// use redeval_harm::Vulnerability;
///
/// let v = Vulnerability::new("CVE-2016-6662", 10.0, 1.0);
/// assert!(v.is_critical(8.0));
/// let w = Vulnerability::new("CVE-2016-4805", 10.0, 0.39);
/// assert!(!w.is_critical(8.0)); // derived base score 7.1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vulnerability {
    /// Identifier (typically a CVE id).
    pub id: String,
    /// Attack impact — the CVSS v2 impact subscore, `0.0..=10.0`.
    pub impact: f64,
    /// Attack success probability — exploitability subscore / 10,
    /// `0.0..=1.0`.
    pub probability: f64,
    /// Explicit CVSS base score when known; otherwise it is derived from
    /// impact and probability via the v2 base equation.
    pub base_score: Option<f64>,
}

impl Vulnerability {
    /// Creates a vulnerability from the paper's two Table-I quantities.
    ///
    /// # Panics
    ///
    /// Panics if `impact` is outside `0.0..=10.0` or `probability` outside
    /// `0.0..=1.0` (model-construction error).
    pub fn new(id: impl Into<String>, impact: f64, probability: f64) -> Self {
        assert!(
            (0.0..=10.0).contains(&impact),
            "impact {impact} outside 0..=10"
        );
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} outside 0..=1"
        );
        Vulnerability {
            id: id.into(),
            impact,
            probability,
            base_score: None,
        }
    }

    /// Creates a vulnerability with an explicit CVSS base score.
    ///
    /// # Panics
    ///
    /// Same range panics as [`new`](Self::new); additionally if
    /// `base_score` is outside `0.0..=10.0`.
    pub fn with_base_score(
        id: impl Into<String>,
        impact: f64,
        probability: f64,
        base_score: f64,
    ) -> Self {
        assert!(
            (0.0..=10.0).contains(&base_score),
            "base score {base_score} outside 0..=10"
        );
        let mut v = Vulnerability::new(id, impact, probability);
        v.base_score = Some(base_score);
        v
    }

    /// Creates a vulnerability from a CVSS v2 base vector, extracting the
    /// impact, probability and base score exactly as the paper does.
    pub fn from_cvss_v2(id: impl Into<String>, vector: &v2::BaseVector) -> Self {
        Vulnerability {
            id: id.into(),
            impact: vector.attack_impact(),
            probability: vector.attack_success_probability(),
            base_score: Some(vector.base_score()),
        }
    }

    /// The CVSS v2 base score: the explicit one when present, otherwise
    /// derived from `(impact, probability·10)` via the v2 base equation.
    pub fn effective_base_score(&self) -> f64 {
        if let Some(b) = self.base_score {
            return b;
        }
        let f = if self.impact == 0.0 { 0.0 } else { 1.176 };
        let raw = ((0.6 * self.impact) + (0.4 * self.probability * 10.0) - 1.5) * f;
        (raw.clamp(0.0, 10.0) * 10.0).round() / 10.0
    }

    /// Whether the paper would patch this vulnerability at the given
    /// criticality threshold (base score strictly greater).
    pub fn is_critical(&self, threshold: f64) -> bool {
        self.effective_base_score() > threshold
    }
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (impact {:.1}, probability {:.2})",
            self.id, self.impact, self.probability
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_base_score_matches_cvss2() {
        // impact 10, probability 1.0 -> E = 10 -> base 10.
        let v = Vulnerability::new("x", 10.0, 1.0);
        assert_eq!(v.effective_base_score(), 10.0);
        // impact 2.9, probability 1.0 -> base 5.0 (CVE-2016-4979).
        let v = Vulnerability::new("x", 2.9, 1.0);
        assert_eq!(v.effective_base_score(), 5.0);
        // impact 10, probability 0.39 -> base 7.1 (local kernel vulns).
        let v = Vulnerability::new("x", 10.0, 0.39);
        assert_eq!(v.effective_base_score(), 7.1);
        // impact 6.4, probability 1.0 -> base 7.5 (CVE-2016-0638).
        let v = Vulnerability::new("x", 6.4, 1.0);
        assert_eq!(v.effective_base_score(), 7.5);
        // impact 2.9, probability 0.86 -> base 4.3 (CVE-2015-3152).
        let v = Vulnerability::new("x", 2.9, 0.86);
        assert_eq!(v.effective_base_score(), 4.3);
    }

    #[test]
    fn explicit_base_score_wins() {
        let v = Vulnerability::with_base_score("x", 10.0, 1.0, 6.0);
        assert_eq!(v.effective_base_score(), 6.0);
        assert!(!v.is_critical(8.0));
    }

    #[test]
    fn from_cvss_vector() {
        let vec: v2::BaseVector = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap();
        let v = Vulnerability::from_cvss_v2("CVE-X", &vec);
        assert_eq!(v.impact, 10.0);
        assert_eq!(v.probability, 1.0);
        assert_eq!(v.base_score, Some(10.0));
    }

    #[test]
    fn zero_impact_base_score_is_zero() {
        let v = Vulnerability::new("x", 0.0, 1.0);
        assert_eq!(v.effective_base_score(), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = Vulnerability::new("x", 5.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "impact")]
    fn invalid_impact_panics() {
        let _ = Vulnerability::new("x", -0.1, 0.5);
    }

    #[test]
    fn display_contains_id() {
        let v = Vulnerability::new("CVE-1", 1.0, 0.5);
        assert!(v.to_string().contains("CVE-1"));
    }
}
