//! Property-based tests: the three steady-state solvers agree with each
//! other and with closed forms on randomized chains.

use proptest::prelude::*;
use redeval_markov::{BirthDeath, Ctmc, SteadyStateMethod, SteadyStateOptions, Summary};

/// Random positive rates spanning several orders of magnitude.
fn rate() -> impl Strategy<Value = f64> {
    (-3.0f64..3.0).prop_map(|e| 10f64.powf(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Birth–death closed form == GTH, across six decades of stiffness
    /// (GTH is subtraction-free, so stiffness costs it nothing).
    #[test]
    fn birth_death_gth_agrees_with_closed_form(
        births in prop::collection::vec(rate(), 1..8),
        deaths in prop::collection::vec(rate(), 1..8),
    ) {
        let n = births.len().min(deaths.len());
        let bd = BirthDeath::new(births[..n].to_vec(), deaths[..n].to_vec());
        let closed = bd.steady_state().unwrap();
        let ctmc = bd.to_ctmc();
        let gth = ctmc
            .steady_state_with(&SteadyStateOptions {
                method: SteadyStateMethod::Gth,
                ..Default::default()
            })
            .unwrap();
        for (a, b) in closed.iter().zip(&gth) {
            prop_assert!((a - b).abs() < 1e-9, "gth: {a} vs {b}");
        }
    }

    /// Gauss–Seidel agrees with the closed form on moderately stiff
    /// chains (rates within ~4 decades — availability-model territory).
    /// Beyond that, iterative accuracy degrades and GTH is the right
    /// tool; the `Auto` method picks it for small chains.
    #[test]
    fn birth_death_gauss_seidel_agrees_when_moderately_stiff(
        births in prop::collection::vec(0.01f64..100.0, 1..8),
        deaths in prop::collection::vec(0.01f64..100.0, 1..8),
    ) {
        let n = births.len().min(deaths.len());
        let bd = BirthDeath::new(births[..n].to_vec(), deaths[..n].to_vec());
        let closed = bd.steady_state().unwrap();
        let gs = bd
            .to_ctmc()
            .steady_state_with(&SteadyStateOptions {
                method: SteadyStateMethod::GaussSeidel,
                tolerance: 1e-12,
                ..Default::default()
            })
            .unwrap();
        for (a, b) in closed.iter().zip(&gs) {
            prop_assert!((a - b).abs() < 1e-6 + 1e-5 * a, "gauss-seidel: {a} vs {b}");
        }
    }

    /// On a random irreducible chain (ring + random chords) the steady
    /// state satisfies πQ = 0 and Σπ = 1.
    #[test]
    fn steady_state_is_stationary(
        ring_rates in prop::collection::vec(rate(), 3..10),
        chords in prop::collection::vec((0usize..10, 0usize..10, rate()), 0..12),
    ) {
        let n = ring_rates.len();
        let mut c = Ctmc::new(n);
        for (i, &r) in ring_rates.iter().enumerate() {
            c.add_transition(i, (i + 1) % n, r);
        }
        for &(a, b, r) in &chords {
            c.add_transition(a % n, b % n, r);
        }
        let pi = c.steady_state().unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        // Verify stationarity directly: inflow == outflow per state.
        let q = c.generator().unwrap();
        for j in 0..n {
            let mut flow = 0.0;
            for (i, p) in pi.iter().enumerate() {
                flow += p * q.get(i, j);
            }
            prop_assert!(flow.abs() < 1e-9, "state {j}: net flow {flow}");
        }
    }

    /// Transient distribution is a probability vector for any time and
    /// converges to the steady state.
    #[test]
    fn transient_is_distribution(
        ring_rates in prop::collection::vec(0.1f64..10.0, 3..7),
        t in 0.0f64..50.0,
    ) {
        let n = ring_rates.len();
        let mut c = Ctmc::new(n);
        for (i, &r) in ring_rates.iter().enumerate() {
            c.add_transition(i, (i + 1) % n, r);
        }
        let p = c.transient(0, t).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
    }

    /// Uniformization at a long horizon matches the stationary solution.
    #[test]
    fn transient_converges(ring_rates in prop::collection::vec(0.5f64..5.0, 3..6)) {
        let n = ring_rates.len();
        let mut c = Ctmc::new(n);
        for (i, &r) in ring_rates.iter().enumerate() {
            c.add_transition(i, (i + 1) % n, r);
            c.add_transition((i + 1) % n, i, r * 0.5);
        }
        let pt = c.transient(0, 500.0).unwrap();
        let pi = c.steady_state().unwrap();
        for (a, b) in pt.iter().zip(&pi) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// MTTA of a pure birth chain equals the sum of stage means.
    #[test]
    fn erlang_mtta(rates in prop::collection::vec(rate(), 1..10)) {
        let n = rates.len();
        let mut c = Ctmc::new(n + 1);
        for (i, &r) in rates.iter().enumerate() {
            c.add_transition(i, i + 1, r);
        }
        let mtta = c.mean_time_to_absorption(0).unwrap();
        let expect: f64 = rates.iter().map(|r| 1.0 / r).sum();
        prop_assert!((mtta - expect).abs() / expect < 1e-9);
    }

    /// Welford merge is order-independent.
    #[test]
    fn summary_merge_associative(
        xs in prop::collection::vec(-100.0f64..100.0, 1..50),
        split in 0usize..50,
    ) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs { whole.push(x); }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-7);
    }
}
