//! Continuous-time Markov chains.

use crate::matrix::Csr;
use crate::steady::{self, SteadyStateOptions};
use crate::transient::{self, TransientOptions};
use crate::SolveError;

/// One rate transition of a [`Ctmc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: usize,
    /// Destination state.
    pub to: usize,
    /// Transition rate (per unit time), strictly positive.
    pub rate: f64,
}

/// A finite continuous-time Markov chain described by its transition rates.
///
/// States are dense indices `0..n`. Self-loops are ignored (they have no
/// effect on a CTMC); parallel transitions are summed.
///
/// # Examples
///
/// Mean time to absorption of a two-step Erlang chain is the sum of the
/// stage means:
///
/// ```
/// use redeval_markov::Ctmc;
///
/// # fn main() -> Result<(), redeval_markov::SolveError> {
/// let mut c = Ctmc::new(3);
/// c.add_transition(0, 1, 2.0);
/// c.add_transition(1, 2, 4.0);
/// let mtta = c.mean_time_to_absorption(0)?;
/// assert!((mtta - (0.5 + 0.25)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ctmc {
    n: usize,
    transitions: Vec<Transition>,
}

impl Ctmc {
    /// Creates an empty chain with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        Ctmc {
            n,
            transitions: Vec::new(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chain has zero states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The raw transitions added so far.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Adds a rate transition `from -> to`.
    ///
    /// Zero-rate transitions and self-loops are accepted and ignored at
    /// solve time; validation of indices/rates happens in the solvers so
    /// that model-construction code can stay infallible.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) {
        self.transitions.push(Transition { from, to, rate });
    }

    /// Validates all transitions, returning the cleaned list (no self-loops,
    /// no zero rates).
    fn validated(&self) -> Result<Vec<Transition>, SolveError> {
        if self.n == 0 {
            return Err(SolveError::Empty);
        }
        let mut out = Vec::with_capacity(self.transitions.len());
        for t in &self.transitions {
            if t.from >= self.n {
                return Err(SolveError::StateOutOfRange {
                    index: t.from,
                    n: self.n,
                });
            }
            if t.to >= self.n {
                return Err(SolveError::StateOutOfRange {
                    index: t.to,
                    n: self.n,
                });
            }
            if !t.rate.is_finite() || t.rate < 0.0 {
                return Err(SolveError::InvalidRate {
                    from: t.from,
                    to: t.to,
                    value: t.rate,
                });
            }
            if t.rate > 0.0 && t.from != t.to {
                out.push(*t);
            }
        }
        Ok(out)
    }

    /// Builds the infinitesimal generator `Q` as a sparse matrix
    /// (off-diagonal rates plus the negative row-sum diagonal).
    ///
    /// # Errors
    ///
    /// Returns an error if any transition is invalid.
    pub fn generator(&self) -> Result<Csr, SolveError> {
        let ts = self.validated()?;
        let mut trips: Vec<(usize, usize, f64)> = Vec::with_capacity(ts.len() * 2);
        let mut diag = vec![0.0; self.n];
        for t in &ts {
            trips.push((t.from, t.to, t.rate));
            diag[t.from] -= t.rate;
        }
        for (i, d) in diag.iter().enumerate() {
            if *d != 0.0 {
                trips.push((i, i, *d));
            }
        }
        Ok(Csr::from_triplets(self.n, self.n, &trips))
    }

    /// The off-diagonal rate matrix `R` (no diagonal entries).
    pub(crate) fn rate_matrix(&self) -> Result<Csr, SolveError> {
        let ts = self.validated()?;
        let trips: Vec<(usize, usize, f64)> = ts.iter().map(|t| (t.from, t.to, t.rate)).collect();
        Ok(Csr::from_triplets(self.n, self.n, &trips))
    }

    /// Total exit rate of every state.
    pub fn exit_rates(&self) -> Result<Vec<f64>, SolveError> {
        let ts = self.validated()?;
        let mut out = vec![0.0; self.n];
        for t in &ts {
            out[t.from] += t.rate;
        }
        Ok(out)
    }

    /// The steady-state distribution `π` with `πQ = 0`, `Σπ = 1`, using
    /// automatically chosen solver options (GTH for small chains,
    /// Gauss–Seidel for large ones).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Reducible`] when the chain does not have a
    /// single closed communicating class, and solver errors otherwise.
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        self.steady_state_with(&SteadyStateOptions::default())
    }

    /// The steady-state distribution with explicit solver options.
    ///
    /// # Errors
    ///
    /// See [`steady_state`](Self::steady_state).
    pub fn steady_state_with(&self, options: &SteadyStateOptions) -> Result<Vec<f64>, SolveError> {
        let rates = self.rate_matrix()?;
        steady::steady_state(&rates, options)
    }

    /// The steady-state distribution together with its convergence
    /// statistics ([`SolveStats`](crate::SolveStats)): the method that ran, iterations and
    /// the final residual — surfaced on the success path, not just
    /// inside [`SolveError::NoConvergence`].
    ///
    /// # Errors
    ///
    /// See [`steady_state`](Self::steady_state).
    pub fn steady_state_with_stats(
        &self,
        options: &SteadyStateOptions,
    ) -> Result<(Vec<f64>, crate::SolveStats), SolveError> {
        let rates = self.rate_matrix()?;
        steady::steady_state_with_stats(&rates, options)
    }

    /// Expected steady-state reward `Σ_i π_i · reward(i)`.
    ///
    /// This is how SPNP-style reward measures (e.g. the paper's
    /// capacity-oriented availability) are evaluated.
    ///
    /// # Errors
    ///
    /// See [`steady_state`](Self::steady_state).
    pub fn expected_steady_state_reward<F>(&self, reward: F) -> Result<f64, SolveError>
    where
        F: Fn(usize) -> f64,
    {
        let pi = self.steady_state()?;
        Ok(pi.iter().enumerate().map(|(i, p)| p * reward(i)).sum())
    }

    /// Probability of being in state `target` at steady state.
    ///
    /// # Errors
    ///
    /// See [`steady_state`](Self::steady_state).
    pub fn steady_state_probability(&self, target: usize) -> Result<f64, SolveError> {
        let pi = self.steady_state()?;
        pi.get(target).copied().ok_or(SolveError::StateOutOfRange {
            index: target,
            n: self.n,
        })
    }

    /// Transient state probabilities `π(t)` starting from `initial`,
    /// computed by uniformization.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid transitions or a non-finite `t`.
    pub fn transient(&self, initial: usize, t: f64) -> Result<Vec<f64>, SolveError> {
        let mut p0 = vec![0.0; self.n];
        if initial >= self.n {
            return Err(SolveError::StateOutOfRange {
                index: initial,
                n: self.n,
            });
        }
        p0[initial] = 1.0;
        self.transient_from(&p0, t, &TransientOptions::default())
    }

    /// Transient probabilities from an arbitrary initial distribution.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid transitions or a non-finite `t`.
    pub fn transient_from(
        &self,
        initial: &[f64],
        t: f64,
        options: &TransientOptions,
    ) -> Result<Vec<f64>, SolveError> {
        let rates = self.rate_matrix()?;
        transient::transient(&rates, initial, t, options)
    }

    /// Expected instantaneous reward at time `t`.
    ///
    /// # Errors
    ///
    /// See [`transient`](Self::transient).
    pub fn expected_transient_reward<F>(
        &self,
        initial: usize,
        t: f64,
        reward: F,
    ) -> Result<f64, SolveError>
    where
        F: Fn(usize) -> f64,
    {
        let p = self.transient(initial, t)?;
        Ok(p.iter().enumerate().map(|(i, pi)| pi * reward(i)).sum())
    }

    /// Time-averaged (interval) reward over `[0, t]` starting from
    /// `initial`: `(1/t) ∫₀ᵗ Σᵢ πᵢ(s)·reward(i) ds`, by uniformization.
    ///
    /// With an indicator reward this is the classical *interval
    /// availability*.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors; `t` must be positive.
    pub fn interval_reward<F>(&self, initial: usize, t: f64, reward: F) -> Result<f64, SolveError>
    where
        F: Fn(usize) -> f64,
    {
        if initial >= self.n {
            return Err(SolveError::StateOutOfRange {
                index: initial,
                n: self.n,
            });
        }
        // `!(t > 0.0)` rather than `t <= 0.0` so NaN is rejected too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t > 0.0) {
            return Err(SolveError::InvalidRate {
                from: 0,
                to: 0,
                value: t,
            });
        }
        let mut p0 = vec![0.0; self.n];
        p0[initial] = 1.0;
        let rates = self.rate_matrix()?;
        let occ = transient::accumulated(&rates, &p0, t, &TransientOptions::default())?;
        Ok(occ
            .iter()
            .enumerate()
            .map(|(i, l)| l * reward(i))
            .sum::<f64>()
            / t)
    }

    /// First-passage probability: the chance of hitting any state in
    /// `targets` within time `t`, starting from `from`.
    ///
    /// Computed by making the target states absorbing and evaluating the
    /// transient distribution. With `targets` = the down states this is
    /// the complement of the classical reliability function `R(t)`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors; `targets` must be non-empty
    /// and in range.
    pub fn first_passage_probability(
        &self,
        from: usize,
        targets: &[usize],
        t: f64,
    ) -> Result<f64, SolveError> {
        if targets.is_empty() {
            return Err(SolveError::NoAbsorbingStates);
        }
        for &s in targets.iter().chain(std::iter::once(&from)) {
            if s >= self.n {
                return Err(SolveError::StateOutOfRange {
                    index: s,
                    n: self.n,
                });
            }
        }
        if targets.contains(&from) {
            return Ok(1.0);
        }
        let mut absorbed = Ctmc::new(self.n);
        let is_target = |s: usize| targets.contains(&s);
        for tr in &self.transitions {
            if !is_target(tr.from) {
                absorbed.add_transition(tr.from, tr.to, tr.rate);
            }
        }
        let p = absorbed.transient(from, t)?;
        Ok(targets.iter().map(|&s| p[s]).sum())
    }

    /// The reliability function `R(t)`: probability of staying inside the
    /// `up` predicate throughout `[0, t]`, starting from `from`.
    ///
    /// # Errors
    ///
    /// See [`first_passage_probability`](Self::first_passage_probability);
    /// `from` must satisfy `up`.
    pub fn reliability<F>(&self, from: usize, t: f64, up: F) -> Result<f64, SolveError>
    where
        F: Fn(usize) -> bool,
    {
        let down: Vec<usize> = (0..self.n).filter(|&s| !up(s)).collect();
        if down.is_empty() {
            return Ok(1.0);
        }
        Ok(1.0 - self.first_passage_probability(from, &down, t)?)
    }

    /// The embedded (jump) DTMC: `P_ij = q_ij / exit_i` for non-absorbing
    /// states, absorbing states become self-loops.
    ///
    /// # Errors
    ///
    /// Propagates transition-validation errors.
    pub fn embedded_dtmc(&self) -> Result<crate::Dtmc, SolveError> {
        let ts = self.validated()?;
        let exits = self.exit_rates()?;
        let mut d = crate::Dtmc::new(self.n);
        for t in &ts {
            d.add_probability(t.from, t.to, t.rate / exits[t.from]);
        }
        // Absorbing states get implicit self-loops in `Dtmc::matrix`.
        Ok(d)
    }

    /// States with no outgoing transitions (absorbing states).
    pub fn absorbing_states(&self) -> Result<Vec<usize>, SolveError> {
        let exits = self.exit_rates()?;
        Ok(exits
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == 0.0)
            .map(|(i, _)| i)
            .collect())
    }

    /// Mean time to absorption starting from `start`.
    ///
    /// Solves `Q_TT · m = -1` over the transient (non-absorbing) states.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoAbsorbingStates`] if the chain has no
    /// absorbing state, and [`SolveError::Singular`] when some transient
    /// state cannot reach absorption.
    pub fn mean_time_to_absorption(&self, start: usize) -> Result<f64, SolveError> {
        if start >= self.n {
            return Err(SolveError::StateOutOfRange {
                index: start,
                n: self.n,
            });
        }
        let ts = self.validated()?;
        let exits = self.exit_rates()?;
        let absorbing: Vec<bool> = exits.iter().map(|&r| r == 0.0).collect();
        if !absorbing.iter().any(|&a| a) {
            return Err(SolveError::NoAbsorbingStates);
        }
        if absorbing[start] {
            return Ok(0.0);
        }
        // Map transient states to compact indices.
        let mut map = vec![usize::MAX; self.n];
        let mut transient_states = Vec::new();
        for i in 0..self.n {
            if !absorbing[i] {
                map[i] = transient_states.len();
                transient_states.push(i);
            }
        }
        let m = transient_states.len();
        let mut q = crate::matrix::Dense::zeros(m, m);
        for (k, &i) in transient_states.iter().enumerate() {
            q[(k, k)] = -exits[i];
        }
        for t in &ts {
            if !absorbing[t.from] && !absorbing[t.to] {
                q[(map[t.from], map[t.to])] += t.rate;
            }
        }
        let rhs = vec![-1.0; m];
        let sol = q.solve(&rhs)?;
        let v = sol[map[start]];
        if !v.is_finite() || v < 0.0 {
            return Err(SolveError::Singular);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, lambda);
        c.add_transition(1, 0, mu);
        c
    }

    #[test]
    fn two_state_availability() {
        let c = two_state(0.01, 1.0);
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 1.0 / 1.01).abs() < 1e-12);
        assert!((pi[1] - 0.01 / 1.01).abs() < 1e-12);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = two_state(0.3, 0.7);
        let q = c.generator().unwrap();
        for r in 0..2 {
            let s: f64 = q.row(r).iter().map(|e| e.value).sum();
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn parallel_transitions_sum() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 0.5);
        c.add_transition(0, 1, 0.5);
        c.add_transition(1, 0, 2.0);
        let pi = c.steady_state().unwrap();
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_ignored() {
        let mut c = two_state(1.0, 1.0);
        c.add_transition(0, 0, 99.0);
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_rate_rejected() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, -1.0);
        assert!(matches!(
            c.steady_state(),
            Err(SolveError::InvalidRate { .. })
        ));
        let mut c2 = Ctmc::new(2);
        c2.add_transition(0, 1, f64::NAN);
        assert!(matches!(
            c2.steady_state(),
            Err(SolveError::InvalidRate { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 5, 1.0);
        assert!(matches!(
            c.steady_state(),
            Err(SolveError::StateOutOfRange { index: 5, n: 2 })
        ));
    }

    #[test]
    fn empty_chain_rejected() {
        let c = Ctmc::new(0);
        assert_eq!(c.steady_state(), Err(SolveError::Empty));
    }

    #[test]
    fn reducible_chain_detected() {
        // Two disconnected 2-cycles.
        let mut c = Ctmc::new(4);
        c.add_transition(0, 1, 1.0);
        c.add_transition(1, 0, 1.0);
        c.add_transition(2, 3, 1.0);
        c.add_transition(3, 2, 1.0);
        assert_eq!(c.steady_state(), Err(SolveError::Reducible));
    }

    #[test]
    fn erlang_mtta() {
        let mut c = Ctmc::new(4);
        c.add_transition(0, 1, 1.0);
        c.add_transition(1, 2, 2.0);
        c.add_transition(2, 3, 4.0);
        let mtta = c.mean_time_to_absorption(0).unwrap();
        assert!((mtta - 1.75).abs() < 1e-12);
        assert_eq!(c.mean_time_to_absorption(3).unwrap(), 0.0);
        assert_eq!(c.absorbing_states().unwrap(), vec![3]);
    }

    #[test]
    fn mtta_requires_absorbing_state() {
        let c = two_state(1.0, 1.0);
        assert_eq!(
            c.mean_time_to_absorption(0),
            Err(SolveError::NoAbsorbingStates)
        );
    }

    #[test]
    fn expected_reward_weights_by_probability() {
        let c = two_state(1.0, 3.0); // pi = [3/4, 1/4]
        let r = c
            .expected_steady_state_reward(|s| if s == 0 { 1.0 } else { 0.0 })
            .unwrap();
        assert!((r - 0.75).abs() < 1e-12);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let c = two_state(0.5, 1.5);
        let pt = c.transient(0, 50.0).unwrap();
        let pi = c.steady_state().unwrap();
        for (a, b) in pt.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let c = two_state(0.5, 1.5);
        let p = c.transient(1, 0.0).unwrap();
        assert_eq!(p, vec![0.0, 1.0]);
    }

    #[test]
    fn first_passage_two_state_is_exponential() {
        // Hitting time of the down state is Exp(λ): P = 1 - e^{-λt}.
        let lambda = 0.8;
        let c = two_state(lambda, 2.0);
        for &t in &[0.1, 1.0, 4.0] {
            let p = c.first_passage_probability(0, &[1], t).unwrap();
            let expect = 1.0 - (-lambda * t).exp();
            assert!((p - expect).abs() < 1e-10, "t={t}");
            let r = c.reliability(0, t, |s| s == 0).unwrap();
            assert!((r - (1.0 - expect)).abs() < 1e-10);
        }
    }

    #[test]
    fn first_passage_ignores_return_paths() {
        // The repair transition must not reduce the hitting probability:
        // compare against a chain with no repair at all.
        let c = two_state(0.5, 100.0);
        let mut no_repair = Ctmc::new(2);
        no_repair.add_transition(0, 1, 0.5);
        let a = c.first_passage_probability(0, &[1], 2.0).unwrap();
        let b = no_repair.first_passage_probability(0, &[1], 2.0).unwrap();
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn first_passage_from_target_is_certain() {
        let c = two_state(1.0, 1.0);
        assert_eq!(c.first_passage_probability(1, &[1], 0.0).unwrap(), 1.0);
    }

    #[test]
    fn reliability_of_all_up_chain_is_one() {
        let c = two_state(1.0, 1.0);
        assert_eq!(c.reliability(0, 5.0, |_| true).unwrap(), 1.0);
    }

    #[test]
    fn first_passage_validates_inputs() {
        let c = two_state(1.0, 1.0);
        assert!(c.first_passage_probability(0, &[], 1.0).is_err());
        assert!(c.first_passage_probability(0, &[7], 1.0).is_err());
        assert!(c.first_passage_probability(9, &[1], 1.0).is_err());
    }

    #[test]
    fn interval_reward_converges_to_steady_state() {
        let c = two_state(0.3, 1.7);
        let up = |s: usize| if s == 0 { 1.0 } else { 0.0 };
        let long = c.interval_reward(0, 10_000.0, up).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((long - pi[0]).abs() < 1e-4);
        // Short horizons from the up state stay near 1.
        let short = c.interval_reward(0, 0.01, up).unwrap();
        assert!(short > 0.99);
        // And are monotonically decreasing towards the steady state.
        let mid = c.interval_reward(0, 1.0, up).unwrap();
        assert!(short > mid && mid > long);
    }

    #[test]
    fn interval_reward_rejects_bad_time() {
        let c = two_state(1.0, 1.0);
        assert!(c.interval_reward(0, 0.0, |_| 1.0).is_err());
        assert!(c.interval_reward(5, 1.0, |_| 1.0).is_err());
    }

    #[test]
    fn embedded_dtmc_jump_probabilities() {
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 3.0);
        c.add_transition(0, 2, 1.0);
        c.add_transition(1, 0, 5.0);
        c.add_transition(2, 0, 5.0);
        let d = c.embedded_dtmc().unwrap();
        let m = d.matrix().unwrap();
        assert!((m.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((m.get(0, 2) - 0.25).abs() < 1e-12);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn embedded_dtmc_preserves_absorption() {
        // CTMC 0 -> {1 (p 2/3), 2 (p 1/3)}, both absorbing.
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 2.0);
        c.add_transition(0, 2, 1.0);
        let d = c.embedded_dtmc().unwrap();
        let probs = d.absorption_probabilities(1).unwrap();
        assert!((probs[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transient_two_state_analytic() {
        // p_down(t) = λ/(λ+µ) (1 - exp(-(λ+µ)t)) starting from up.
        let (l, m) = (0.4, 1.1);
        let c = two_state(l, m);
        for &t in &[0.1, 0.5, 2.0] {
            let p = c.transient(0, t).unwrap();
            let expect = l / (l + m) * (1.0 - (-(l + m) * t).exp());
            assert!((p[1] - expect).abs() < 1e-10, "t={t}");
        }
    }
}
