//! Small statistics helpers shared by the workspace.

/// Weighted mean `Σ wᵢxᵢ / Σ wᵢ`.
///
/// Returns 0.0 when the total weight is zero.
///
/// # Examples
///
/// ```
/// use redeval_markov::weighted_mean;
///
/// let m = weighted_mean(&[(1.0, 0.25), (3.0, 0.75)]);
/// assert!((m - 2.5).abs() < 1e-12);
/// ```
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let (num, den) = pairs
        .iter()
        .fold((0.0, 0.0), |(n, d), &(x, w)| (n + x * w, d + w));
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use redeval_markov::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by `n-1`; 0.0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of an approximate 95% normal confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn mean_and_variance_known_values() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 3.0);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn weighted_mean_zero_weight() {
        assert_eq!(weighted_mean(&[]), 0.0);
        assert_eq!(weighted_mean(&[(5.0, 0.0)]), 0.0);
    }
}
