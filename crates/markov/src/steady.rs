//! Steady-state solvers for CTMCs.
//!
//! The entry point is [`steady_state`], which takes the *off-diagonal* rate
//! matrix. It first isolates the single closed communicating class (the
//! recurrent states); unreachable/transient states receive probability zero.
//! The restricted system is then solved by one of three methods:
//!
//! * **GTH** (Grassmann–Taksar–Heyman) — direct elimination without
//!   subtractions; numerically the most robust, `O(m³)`.
//! * **Gauss–Seidel** — sparse iterative sweeps, good for large chains.
//! * **Power** — power iteration on the uniformized DTMC; slow but simple,
//!   kept mostly as an independent cross-check.

use crate::matrix::{Csr, Dense};
use crate::SolveError;

/// Which steady-state algorithm is used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SteadyStateMethod {
    /// GTH for small chains, Gauss–Seidel above the size threshold.
    Auto,
    /// Grassmann–Taksar–Heyman elimination (direct, dense).
    Gth,
    /// Gauss–Seidel iteration.
    GaussSeidel,
    /// Power iteration on the uniformized chain.
    Power,
}

/// Options controlling the steady-state solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyStateOptions {
    /// Algorithm selection.
    pub method: SteadyStateMethod,
    /// Convergence tolerance for the iterative methods (max-norm of `πQ`).
    pub tolerance: f64,
    /// Iteration budget for the iterative methods.
    pub max_iterations: usize,
    /// Chain size above which `Auto` switches from GTH to Gauss–Seidel.
    pub dense_threshold: usize,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        SteadyStateOptions {
            method: SteadyStateMethod::Auto,
            tolerance: 1e-13,
            max_iterations: 200_000,
            dense_threshold: 512,
        }
    }
}

/// Convergence statistics of one steady-state solve, reported on the
/// **success** path (the failure path carries its own numbers inside
/// [`SolveError::NoConvergence`]).
///
/// All fields are deterministic functions of the chain and the options:
/// the same solve always reports the same stats, which is what lets the
/// telemetry layer pin them in goldens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// The method that actually ran (`Auto` is resolved to the concrete
    /// algorithm before solving).
    pub method: SteadyStateMethod,
    /// Sweeps/iterations performed; `0` for the direct GTH elimination
    /// and for trivial single-state classes.
    pub iterations: usize,
    /// Max-norm residual `‖πQ‖∞` of the returned distribution, measured
    /// on the closed recurrent class (`0.0` for trivial classes).
    pub residual: f64,
    /// Number of states in the closed recurrent class actually solved.
    pub states: usize,
}

/// Computes the steady-state distribution of a CTMC given its off-diagonal
/// rate matrix.
///
/// # Errors
///
/// * [`SolveError::Empty`] for a 0-state matrix;
/// * [`SolveError::Reducible`] when more than one closed communicating
///   class exists;
/// * [`SolveError::NoConvergence`] when an iterative method exhausts its
///   budget.
pub fn steady_state(rates: &Csr, options: &SteadyStateOptions) -> Result<Vec<f64>, SolveError> {
    steady_state_with_stats(rates, options).map(|(pi, _)| pi)
}

/// [`steady_state`] returning the distribution **and** its convergence
/// statistics, so callers can surface iterations/residual on the success
/// path too (not just inside [`SolveError::NoConvergence`]).
///
/// # Errors
///
/// As [`steady_state`].
pub fn steady_state_with_stats(
    rates: &Csr,
    options: &SteadyStateOptions,
) -> Result<(Vec<f64>, SolveStats), SolveError> {
    let n = rates.rows();
    if n == 0 {
        return Err(SolveError::Empty);
    }
    let closed = closed_classes(rates);
    if closed.len() != 1 {
        return Err(SolveError::Reducible);
    }
    let class = &closed[0];
    let m = class.len();
    let method = match options.method {
        SteadyStateMethod::Auto => {
            if m <= options.dense_threshold {
                SteadyStateMethod::Gth
            } else {
                SteadyStateMethod::GaussSeidel
            }
        }
        other => other,
    };
    let mut pi = vec![0.0; n];
    if m == 1 {
        pi[class[0]] = 1.0;
        let stats = SolveStats {
            method,
            iterations: 0,
            residual: 0.0,
            states: 1,
        };
        return Ok((pi, stats));
    }

    // Restrict the rate matrix to the closed class.
    let mut map = vec![usize::MAX; n];
    for (k, &s) in class.iter().enumerate() {
        map[s] = k;
    }
    let mut trips = Vec::new();
    for &s in class {
        for e in rates.row(s) {
            if map[e.index] != usize::MAX && e.index != s {
                trips.push((map[s], map[e.index], e.value));
            }
        }
    }
    let sub = Csr::from_triplets(m, m, &trips);

    let (sol, iterations, resid) = match method {
        SteadyStateMethod::Gth => gth(&sub),
        SteadyStateMethod::GaussSeidel => gauss_seidel(&sub, options),
        SteadyStateMethod::Power => power(&sub, options),
        SteadyStateMethod::Auto => unreachable!("resolved above"),
    }?;
    for (k, &s) in class.iter().enumerate() {
        pi[s] = sol[k];
    }
    let stats = SolveStats {
        method,
        iterations,
        residual: resid,
        states: m,
    };
    Ok((pi, stats))
}

/// Finds the closed communicating classes (SCCs with no outgoing edges)
/// of the directed graph induced by positive rates.
fn closed_classes(rates: &Csr) -> Vec<Vec<usize>> {
    let n = rates.rows();
    let scc = tarjan_scc(rates);
    let mut comp_of = vec![0usize; n];
    for (c, members) in scc.iter().enumerate() {
        for &s in members {
            comp_of[s] = c;
        }
    }
    let mut closed = vec![true; scc.len()];
    for s in 0..n {
        for e in rates.row(s) {
            if e.index != s && comp_of[e.index] != comp_of[s] {
                closed[comp_of[s]] = false;
            }
        }
    }
    scc.into_iter()
        .enumerate()
        .filter(|(c, _)| closed[*c])
        .map(|(_, mut members)| {
            members.sort_unstable();
            members
        })
        .collect()
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_scc(rates: &Csr) -> Vec<Vec<usize>> {
    let n = rates.rows();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack of (node, edge cursor).
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let row = rates.row(v);
            let mut advanced = false;
            while *cursor < row.len() {
                let w = row[*cursor].index;
                *cursor += 1;
                if w == v {
                    continue;
                }
                if index[w] == UNVISITED {
                    dfs.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if advanced {
                continue;
            }
            // Node finished.
            dfs.pop();
            if let Some(&(parent, _)) = dfs.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                sccs.push(comp);
            }
        }
    }
    sccs
}

/// GTH elimination on an irreducible off-diagonal rate matrix.
///
/// Returns `(pi, iterations, residual)`; GTH is direct, so iterations is
/// always `0` and the residual is measured a-posteriori on the input.
fn gth(rates: &Csr) -> Result<(Vec<f64>, usize, f64), SolveError> {
    let n = rates.rows();
    let mut a = rates.to_dense();
    // Forward elimination.
    for k in (1..n).rev() {
        let s: f64 = a.row(k)[..k].iter().sum();
        if s <= 0.0 {
            // State k cannot reach lower-numbered states: irreducibility was
            // checked, so this indicates numerical trouble.
            return Err(SolveError::Singular);
        }
        for i in 0..k {
            let v = a[(i, k)] / s;
            a[(i, k)] = v;
        }
        for i in 0..k {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..k {
                if j != i {
                    let add = aik * a[(k, j)];
                    a[(i, j)] += add;
                }
            }
        }
    }
    // Back substitution.
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut s = 0.0;
        for i in 0..k {
            s += pi[i] * a[(i, k)];
        }
        pi[k] = s;
    }
    normalize(&mut pi);
    let exit: Vec<f64> = (0..n)
        .map(|i| rates.row(i).iter().map(|e| e.value).sum())
        .collect();
    let resid = residual(rates, &exit, &pi);
    Ok((pi, 0, resid))
}

/// Gauss–Seidel sweeps on `πQ = 0`, returning `(pi, sweeps, residual)`.
fn gauss_seidel(
    rates: &Csr,
    options: &SteadyStateOptions,
) -> Result<(Vec<f64>, usize, f64), SolveError> {
    let n = rates.rows();
    let exit: Vec<f64> = (0..n)
        .map(|i| rates.row(i).iter().map(|e| e.value).sum())
        .collect();
    if exit.iter().any(|&e| e <= 0.0) {
        return Err(SolveError::Singular);
    }
    // The achievable residual scales with the rate magnitudes; make the
    // tolerance scale-aware so stiff chains still converge.
    let scale = exit.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let mut pi = vec![1.0 / n as f64; n];
    for it in 0..options.max_iterations {
        for j in 0..n {
            let mut s = 0.0;
            for e in rates.col(j) {
                if e.index != j {
                    s += pi[e.index] * e.value;
                }
            }
            pi[j] = s / exit[j];
        }
        normalize(&mut pi);
        // Residual: max_j |(πQ)_j|, relative to the rate scale.
        let resid = residual(rates, &exit, &pi);
        if resid < options.tolerance * scale {
            return Ok((pi, it + 1, resid));
        }
        if it == options.max_iterations - 1 {
            return Err(SolveError::NoConvergence {
                iterations: options.max_iterations,
                residual: resid,
            });
        }
    }
    unreachable!("loop always returns")
}

/// Power iteration on the uniformized DTMC `P = I + Q/Λ`, returning
/// `(pi, steps, residual)`.
fn power(rates: &Csr, options: &SteadyStateOptions) -> Result<(Vec<f64>, usize, f64), SolveError> {
    let n = rates.rows();
    let exit: Vec<f64> = (0..n)
        .map(|i| rates.row(i).iter().map(|e| e.value).sum())
        .collect();
    let lambda = exit.iter().cloned().fold(0.0, f64::max) * 1.05;
    if lambda <= 0.0 {
        return Err(SolveError::Singular);
    }
    let mut pi = vec![1.0 / n as f64; n];
    for it in 0..options.max_iterations {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let stay = 1.0 - exit[i] / lambda;
            next[i] += pi[i] * stay;
            for e in rates.row(i) {
                if e.index != i {
                    next[e.index] += pi[i] * e.value / lambda;
                }
            }
        }
        normalize(&mut next);
        let diff = pi
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        pi = next;
        // The per-step displacement scales as residual/Λ; compare in rate units.
        if diff * lambda < options.tolerance * lambda.max(1.0) {
            let resid = residual(rates, &exit, &pi);
            if resid < (options.tolerance * lambda.max(1.0)).max(1e-10) {
                return Ok((pi, it + 1, resid));
            }
        }
        if it == options.max_iterations - 1 {
            return Err(SolveError::NoConvergence {
                iterations: options.max_iterations,
                residual: residual(rates, &exit, &pi),
            });
        }
    }
    unreachable!("loop always returns")
}

fn residual(rates: &Csr, exit: &[f64], pi: &[f64]) -> f64 {
    let n = rates.rows();
    let mut worst = 0.0f64;
    for j in 0..n {
        let mut s = -pi[j] * exit[j];
        for e in rates.col(j) {
            if e.index != j {
                s += pi[e.index] * e.value;
            }
        }
        worst = worst.max(s.abs());
    }
    worst
}

fn normalize(pi: &mut [f64]) {
    let s: f64 = pi.iter().sum();
    if s > 0.0 {
        for p in pi.iter_mut() {
            *p /= s;
        }
    }
}

/// Solves the embedded problem on a dense generator (testing hook).
#[allow(dead_code)]
fn dense_direct(q: &Dense) -> Result<Vec<f64>, SolveError> {
    // Replace last column with ones: π (Q | 1) = (0 | 1).
    let n = q.rows();
    let mut a = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(j, i)] = q[(i, j)];
        }
    }
    for i in 0..n {
        a[(n - 1, i)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    a.solve(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Csr {
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, (i + 1) % n, 1.0 + i as f64));
        }
        Csr::from_triplets(n, n, &trips)
    }

    #[test]
    fn all_methods_agree_on_ring() {
        let r = ring(6);
        let opts_gth = SteadyStateOptions {
            method: SteadyStateMethod::Gth,
            ..Default::default()
        };
        let opts_gs = SteadyStateOptions {
            method: SteadyStateMethod::GaussSeidel,
            ..Default::default()
        };
        let opts_pow = SteadyStateOptions {
            method: SteadyStateMethod::Power,
            tolerance: 1e-12,
            ..Default::default()
        };
        let a = steady_state(&r, &opts_gth).unwrap();
        let b = steady_state(&r, &opts_gs).unwrap();
        let c = steady_state(&r, &opts_pow).unwrap();
        for i in 0..6 {
            assert!((a[i] - b[i]).abs() < 1e-9, "gth vs gs at {i}");
            assert!((a[i] - c[i]).abs() < 1e-8, "gth vs power at {i}");
        }
    }

    #[test]
    fn ring_steady_state_is_inverse_rate_weighted() {
        // On a cycle, π_i ∝ 1/rate_i.
        let r = ring(4);
        let pi = steady_state(&r, &SteadyStateOptions::default()).unwrap();
        let weights: Vec<f64> = (0..4).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            assert!((pi[i] - weights[i] / total).abs() < 1e-12);
        }
    }

    #[test]
    fn transient_states_get_zero_probability() {
        // 0 -> 1 <-> 2; state 0 is transient.
        let r = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let pi = steady_state(&r, &SteadyStateOptions::default()).unwrap();
        assert_eq!(pi[0], 0.0);
        assert!((pi[1] - 0.5).abs() < 1e-12);
        assert!((pi[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_closed_classes_is_reducible() {
        let r = Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)]);
        assert_eq!(
            steady_state(&r, &SteadyStateOptions::default()),
            Err(SolveError::Reducible)
        );
    }

    #[test]
    fn absorbing_state_takes_all_mass() {
        let r = Csr::from_triplets(2, 2, &[(0, 1, 3.0)]);
        let pi = steady_state(&r, &SteadyStateOptions::default()).unwrap();
        assert_eq!(pi, vec![0.0, 1.0]);
    }

    #[test]
    fn single_state_chain() {
        let r = Csr::from_triplets(1, 1, &[]);
        let pi = steady_state(&r, &SteadyStateOptions::default()).unwrap();
        assert_eq!(pi, vec![1.0]);
    }

    #[test]
    fn gth_matches_dense_direct_solve() {
        // Random-ish irreducible 5-state chain with fixed rates.
        let trips = vec![
            (0, 1, 0.3),
            (0, 4, 0.7),
            (1, 2, 1.1),
            (2, 0, 0.2),
            (2, 3, 0.9),
            (3, 1, 2.0),
            (3, 4, 0.1),
            (4, 0, 0.5),
        ];
        let r = Csr::from_triplets(5, 5, &trips);
        let pi = steady_state(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::Gth,
                ..Default::default()
            },
        )
        .unwrap();
        // Build the dense generator and verify πQ = 0.
        let mut q = r.to_dense();
        for i in 0..5 {
            let s: f64 = r.row(i).iter().map(|e| e.value).sum();
            q[(i, i)] = -s;
        }
        let res = q.vecmat(&pi);
        for v in res {
            assert!(v.abs() < 1e-13, "residual {v}");
        }
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-13);
    }

    #[test]
    fn gauss_seidel_handles_stiff_rates() {
        // Rates spanning 8 orders of magnitude (like hardware vs patch).
        let trips = vec![
            (0, 1, 1e-5),
            (1, 0, 1.0),
            (1, 2, 0.5),
            (2, 0, 2.0),
            (0, 2, 3e-4),
        ];
        let r = Csr::from_triplets(3, 3, &trips);
        let gs = steady_state(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::GaussSeidel,
                tolerance: 1e-15,
                ..Default::default()
            },
        )
        .unwrap();
        let gth = steady_state(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::Gth,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            let rel = (gs[i] - gth[i]).abs() / gth[i].max(1e-300);
            assert!(rel < 1e-6, "state {i}: {} vs {}", gs[i], gth[i]);
        }
    }

    #[test]
    fn auto_dispatches_exactly_at_the_dense_threshold() {
        // The documented boundary: `Auto` solves with GTH while the
        // closed class has at most `dense_threshold` states and with
        // Gauss–Seidel strictly above it. Pin the dispatch bitwise on
        // 511/512/513-state chains against the explicit methods.
        let opts = |method| SteadyStateOptions {
            method,
            ..Default::default()
        };
        for n in [511usize, 512] {
            let auto = steady_state(&ring(n), &opts(SteadyStateMethod::Auto)).unwrap();
            let gth = steady_state(&ring(n), &opts(SteadyStateMethod::Gth)).unwrap();
            assert!(
                auto.iter()
                    .zip(&gth)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "n={n}: Auto at or below the threshold must be GTH"
            );
        }
        let auto = steady_state(&ring(513), &opts(SteadyStateMethod::Auto)).unwrap();
        let gs = steady_state(&ring(513), &opts(SteadyStateMethod::GaussSeidel)).unwrap();
        assert!(
            auto.iter()
                .zip(&gs)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "Auto above the threshold must be Gauss–Seidel"
        );
        // The identities above only pin the dispatch if the two methods
        // are bitwise distinguishable at this size — confirm they are.
        let gth = steady_state(&ring(513), &opts(SteadyStateMethod::Gth)).unwrap();
        assert!(
            auto.iter()
                .zip(&gth)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "GTH and Gauss–Seidel coincide bitwise; the dispatch test is vacuous"
        );
        // A custom threshold moves the boundary with it.
        let tight = SteadyStateOptions {
            dense_threshold: 8,
            ..Default::default()
        };
        let auto = steady_state(&ring(9), &tight).unwrap();
        let gs = steady_state(
            &ring(9),
            &SteadyStateOptions {
                method: SteadyStateMethod::GaussSeidel,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(auto
            .iter()
            .zip(&gs)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn stats_surface_on_the_success_path() {
        let r = ring(6);
        let (pi, stats) = steady_state_with_stats(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::GaussSeidel,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats.method, SteadyStateMethod::GaussSeidel);
        assert_eq!(stats.states, 6);
        assert!(stats.iterations > 0, "iterative solves report sweeps");
        assert!(stats.residual >= 0.0 && stats.residual < 1e-12);
        // Identical to the stats-less entry point, bit for bit.
        let plain = steady_state(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::GaussSeidel,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pi
            .iter()
            .zip(&plain)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        // GTH is direct: zero iterations, but the residual is still real.
        let (_, gth_stats) = steady_state_with_stats(
            &r,
            &SteadyStateOptions {
                method: SteadyStateMethod::Gth,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(gth_stats.iterations, 0);
        assert!(gth_stats.residual < 1e-12);

        // Trivial closed class short-circuits with empty stats.
        let absorbing = Csr::from_triplets(2, 2, &[(0, 1, 3.0)]);
        let (_, s1) = steady_state_with_stats(&absorbing, &SteadyStateOptions::default()).unwrap();
        assert_eq!((s1.states, s1.iterations), (1, 0));
        assert_eq!(s1.residual, 0.0);
    }

    #[test]
    fn stats_are_deterministic_across_repeat_solves() {
        let r = ring(40);
        let opts = SteadyStateOptions {
            method: SteadyStateMethod::GaussSeidel,
            ..Default::default()
        };
        let (_, a) = steady_state_with_stats(&r, &opts).unwrap();
        let (_, b) = steady_state_with_stats(&r, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_threshold_picks_gs_for_large() {
        let n = 600;
        let r = ring(n);
        let pi = steady_state(&r, &SteadyStateOptions::default()).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
