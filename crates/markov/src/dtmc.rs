//! Discrete-time Markov chains.

use crate::matrix::{Csr, Dense};
use crate::steady::{SteadyStateMethod, SteadyStateOptions};
use crate::SolveError;

/// A finite discrete-time Markov chain given by transition probabilities.
///
/// Rows must sum to one (absorbing states may be written either with an
/// explicit self-loop of probability one or with no entries at all — the
/// latter is normalized to a self-loop).
///
/// # Examples
///
/// ```
/// use redeval_markov::Dtmc;
///
/// # fn main() -> Result<(), redeval_markov::SolveError> {
/// let mut d = Dtmc::new(2);
/// d.add_probability(0, 1, 1.0);
/// d.add_probability(1, 0, 0.5);
/// d.add_probability(1, 1, 0.5);
/// let pi = d.steady_state()?;
/// assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dtmc {
    n: usize,
    probs: Vec<(usize, usize, f64)>,
}

impl Dtmc {
    /// Creates an empty chain with `n` states.
    pub fn new(n: usize) -> Self {
        Dtmc {
            n,
            probs: Vec::new(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chain has zero states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds transition probability `from -> to` (duplicates are summed).
    pub fn add_probability(&mut self, from: usize, to: usize, p: f64) {
        self.probs.push((from, to, p));
    }

    /// Builds and validates the row-stochastic matrix.
    ///
    /// # Errors
    ///
    /// Returns `InvalidRate` for negative/non-finite probabilities or rows
    /// that do not sum to 0 (treated as absorbing) or 1 within `1e-9`.
    pub fn matrix(&self) -> Result<Csr, SolveError> {
        if self.n == 0 {
            return Err(SolveError::Empty);
        }
        for &(f, t, p) in &self.probs {
            if f >= self.n {
                return Err(SolveError::StateOutOfRange {
                    index: f,
                    n: self.n,
                });
            }
            if t >= self.n {
                return Err(SolveError::StateOutOfRange {
                    index: t,
                    n: self.n,
                });
            }
            if !p.is_finite() || p < 0.0 {
                return Err(SolveError::InvalidRate {
                    from: f,
                    to: t,
                    value: p,
                });
            }
        }
        let mut trips = self.probs.clone();
        let mut row_sums = vec![0.0; self.n];
        for &(f, _, p) in &trips {
            row_sums[f] += p;
        }
        for (i, s) in row_sums.iter().enumerate() {
            if *s == 0.0 {
                trips.push((i, i, 1.0)); // absorbing
            } else if (*s - 1.0).abs() > 1e-9 {
                return Err(SolveError::InvalidRate {
                    from: i,
                    to: i,
                    value: *s,
                });
            }
        }
        Ok(Csr::from_triplets(self.n, self.n, &trips))
    }

    /// Stationary distribution `π = πP`.
    ///
    /// Internally converts to an equivalent CTMC (rates = probabilities,
    /// which preserves the stationary vector for a DTMC after weighting by
    /// mean holding times of 1) and reuses the CTMC machinery.
    ///
    /// # Errors
    ///
    /// Propagates matrix validation errors and
    /// [`SolveError::Reducible`] for multiple closed classes.
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        let p = self.matrix()?;
        // For a DTMC, π = πP has the same solution as the CTMC with
        // off-diagonal rates p_ij and uniform exit rates (1 - p_ii are not
        // uniform, so instead we solve π(P - I) = 0, i.e. a CTMC whose
        // off-diagonal rate matrix is exactly the off-diagonal part of P).
        let n = self.n;
        let mut trips = Vec::new();
        for i in 0..n {
            for e in p.row(i) {
                if e.index != i {
                    trips.push((i, e.index, e.value));
                }
            }
        }
        let rates = Csr::from_triplets(n, n, &trips);
        crate::steady::steady_state(
            &rates,
            &SteadyStateOptions {
                method: SteadyStateMethod::Auto,
                ..Default::default()
            },
        )
    }

    /// Probability of eventually being absorbed in `target` (an absorbing
    /// state), from each state.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoAbsorbingStates`] if `target` is not
    /// absorbing; [`SolveError::Singular`] when the fundamental system
    /// cannot be solved.
    pub fn absorption_probabilities(&self, target: usize) -> Result<Vec<f64>, SolveError> {
        let p = self.matrix()?;
        if target >= self.n {
            return Err(SolveError::StateOutOfRange {
                index: target,
                n: self.n,
            });
        }
        let is_absorbing = |i: usize| p.row(i).len() == 1 && p.row(i)[0].index == i;
        if !is_absorbing(target) {
            return Err(SolveError::NoAbsorbingStates);
        }
        // Transient states: non-absorbing.
        let mut map = vec![usize::MAX; self.n];
        let mut transient = Vec::new();
        for (i, slot) in map.iter_mut().enumerate() {
            if !is_absorbing(i) {
                *slot = transient.len();
                transient.push(i);
            }
        }
        let m = transient.len();
        // (I - Q) x = R_target
        let mut a = Dense::identity(m);
        let mut b = vec![0.0; m];
        for (k, &i) in transient.iter().enumerate() {
            for e in p.row(i) {
                if map[e.index] != usize::MAX {
                    a[(k, map[e.index])] -= e.value;
                } else if e.index == target {
                    b[k] += e.value;
                }
            }
        }
        let x = a.solve(&b)?;
        let mut out = vec![0.0; self.n];
        for (k, &i) in transient.iter().enumerate() {
            out[i] = x[k];
        }
        out[target] = 1.0;
        Ok(out)
    }

    /// Expected number of steps to absorption (in any absorbing state).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoAbsorbingStates`] if no state is absorbing.
    pub fn expected_steps_to_absorption(&self) -> Result<Vec<f64>, SolveError> {
        let p = self.matrix()?;
        let is_absorbing = |i: usize| p.row(i).len() == 1 && p.row(i)[0].index == i;
        let mut map = vec![usize::MAX; self.n];
        let mut transient = Vec::new();
        for (i, slot) in map.iter_mut().enumerate() {
            if !is_absorbing(i) {
                *slot = transient.len();
                transient.push(i);
            }
        }
        if transient.len() == self.n {
            return Err(SolveError::NoAbsorbingStates);
        }
        let m = transient.len();
        let mut a = Dense::identity(m);
        for (k, &i) in transient.iter().enumerate() {
            for e in p.row(i) {
                if map[e.index] != usize::MAX {
                    a[(k, map[e.index])] -= e.value;
                }
            }
        }
        let b = vec![1.0; m];
        let x = a.solve(&b)?;
        let mut out = vec![0.0; self.n];
        for (k, &i) in transient.iter().enumerate() {
            out[i] = x[k];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gambler_ruin_absorption() {
        // States 0..=4; 0 and 4 absorbing; fair coin.
        let mut d = Dtmc::new(5);
        for i in 1..4 {
            d.add_probability(i, i - 1, 0.5);
            d.add_probability(i, i + 1, 0.5);
        }
        let win = d.absorption_probabilities(4).unwrap();
        assert!((win[1] - 0.25).abs() < 1e-12);
        assert!((win[2] - 0.5).abs() < 1e-12);
        assert!((win[3] - 0.75).abs() < 1e-12);
        assert_eq!(win[4], 1.0);
        assert_eq!(win[0], 0.0);
    }

    #[test]
    fn gambler_ruin_expected_steps() {
        let mut d = Dtmc::new(5);
        for i in 1..4 {
            d.add_probability(i, i - 1, 0.5);
            d.add_probability(i, i + 1, 0.5);
        }
        let steps = d.expected_steps_to_absorption().unwrap();
        // E[steps] = i (N - i) for fair walk.
        assert!((steps[1] - 3.0).abs() < 1e-12);
        assert!((steps[2] - 4.0).abs() < 1e-12);
        assert!((steps[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_two_state() {
        let mut d = Dtmc::new(2);
        d.add_probability(0, 0, 0.9);
        d.add_probability(0, 1, 0.1);
        d.add_probability(1, 0, 0.3);
        d.add_probability(1, 1, 0.7);
        let pi = d.steady_state().unwrap();
        assert!((pi[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bad_row_sum_rejected() {
        let mut d = Dtmc::new(2);
        d.add_probability(0, 1, 0.6);
        d.add_probability(0, 0, 0.6);
        d.add_probability(1, 0, 1.0);
        assert!(matches!(d.matrix(), Err(SolveError::InvalidRate { .. })));
    }

    #[test]
    fn absorption_target_must_be_absorbing() {
        let mut d = Dtmc::new(2);
        d.add_probability(0, 1, 1.0);
        d.add_probability(1, 0, 1.0);
        assert_eq!(
            d.absorption_probabilities(1),
            Err(SolveError::NoAbsorbingStates)
        );
    }
}
