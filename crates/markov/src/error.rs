use std::error::Error;
use std::fmt;

/// Error returned by the Markov-chain solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The chain has no states.
    Empty,
    /// A transition references a state index outside `0..n`.
    StateOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of states in the chain.
        n: usize,
    },
    /// A rate or probability was negative, NaN or infinite.
    InvalidRate {
        /// Source state of the offending transition.
        from: usize,
        /// Destination state of the offending transition.
        to: usize,
        /// The invalid value.
        value: f64,
    },
    /// An iterative solver failed to reach the tolerance within the
    /// iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// The chain is reducible (several closed communicating classes), so a
    /// unique steady-state distribution does not exist.
    Reducible,
    /// A linear system arising in the analysis was singular.
    Singular,
    /// The requested analysis needs at least one absorbing state but the
    /// chain has none (or the start state is itself absorbing).
    NoAbsorbingStates,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Empty => write!(f, "chain has no states"),
            SolveError::StateOutOfRange { index, n } => {
                write!(
                    f,
                    "state index {index} out of range for chain with {n} states"
                )
            }
            SolveError::InvalidRate { from, to, value } => {
                write!(f, "invalid rate {value} on transition {from} -> {to}")
            }
            SolveError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            SolveError::Reducible => {
                write!(f, "chain is reducible; steady state is not unique")
            }
            SolveError::Singular => write!(f, "linear system is singular"),
            SolveError::NoAbsorbingStates => {
                write!(f, "analysis requires an absorbing state but none exists")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SolveError>();
    }

    #[test]
    fn display_messages() {
        assert!(SolveError::Empty.to_string().contains("no states"));
        assert!(SolveError::Reducible.to_string().contains("reducible"));
        let e = SolveError::NoConvergence {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
    }
}
