//! Continuous- and discrete-time Markov chain solvers.
//!
//! This crate is the numerical substrate of the `redeval` workspace: it
//! plays the role that SHARPE/SPNP's internal solvers play for the paper
//! being reproduced. It provides:
//!
//! * [`Ctmc`] — a sparse continuous-time Markov chain with
//!   steady-state solvers (GTH elimination, Gauss–Seidel, power iteration),
//!   transient analysis by uniformization, reward evaluation and
//!   mean-time-to-absorption;
//! * [`Dtmc`] — discrete-time chains (steady state, absorption);
//! * [`BirthDeath`] — closed-form birth–death processes used for the
//!   upper-layer redundancy models;
//! * dense and sparse matrix helpers ([`matrix`]).
//!
//! In the reproduction, these solvers carry the paper's availability side:
//! the tangible CTMCs of the SRN sub-models (paper Figures 4/5, guard
//! functions of Table III) are solved here, the birth–death closed forms
//! evaluate the upper-layer redundancy tiers whose COA reward is Table VI,
//! and uniformization powers the transient patch-dip extension.
//!
//! Everything is `f64`, deterministic and allocation-conscious; no external
//! dependencies.
//!
//! # Examples
//!
//! A two-state failure/repair CTMC has availability `µ/(λ+µ)`:
//!
//! ```
//! use redeval_markov::Ctmc;
//!
//! # fn main() -> Result<(), redeval_markov::SolveError> {
//! let (lambda, mu) = (0.001, 0.5);
//! let mut ctmc = Ctmc::new(2);
//! ctmc.add_transition(0, 1, lambda); // up -> down
//! ctmc.add_transition(1, 0, mu); // down -> up
//! let pi = ctmc.steady_state()?;
//! let expected = mu / (lambda + mu);
//! assert!((pi[0] - expected).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod birth_death;
mod ctmc;
mod dtmc;
mod error;
pub mod matrix;
mod stats;
mod steady;
mod transient;

pub use birth_death::BirthDeath;
pub use ctmc::{Ctmc, Transition};
pub use dtmc::Dtmc;
pub use error::SolveError;
pub use stats::{weighted_mean, Summary};
pub use steady::{SolveStats, SteadyStateMethod, SteadyStateOptions};
pub use transient::TransientOptions;

#[cfg(test)]
mod send_sync_audit {
    //! The batch execution layer shares solver values across scoped
    //! worker threads; every public type must stay `Send + Sync`.
    use super::*;

    #[test]
    fn solver_types_are_send_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Ctmc>();
        ok::<Dtmc>();
        ok::<BirthDeath>();
        ok::<Transition>();
        ok::<Summary>();
        ok::<SolveError>();
        ok::<SteadyStateOptions>();
        ok::<SolveStats>();
        ok::<TransientOptions>();
    }
}
