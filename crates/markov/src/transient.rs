//! Transient analysis of CTMCs by uniformization (Jensen's method).

use crate::matrix::Csr;
use crate::SolveError;

/// Options controlling transient analysis (uniformization).
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Truncation error bound for the Poisson series.
    pub epsilon: f64,
    /// Safety factor applied to the uniformization rate (must be ≥ 1).
    pub rate_factor: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-12,
            rate_factor: 1.02,
        }
    }
}

/// Computes `π(t) = π(0) · e^{Qt}` by uniformization.
///
/// `rates` is the off-diagonal rate matrix; `initial` the distribution at
/// time zero (it is normalized defensively).
///
/// # Errors
///
/// Returns [`SolveError::InvalidRate`] style errors upstream; here, a
/// non-finite or negative `t` is reported as `InvalidRate` on (0,0).
pub fn transient(
    rates: &Csr,
    initial: &[f64],
    t: f64,
    options: &TransientOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = rates.rows();
    if n == 0 {
        return Err(SolveError::Empty);
    }
    assert_eq!(initial.len(), n, "initial distribution length mismatch");
    if !t.is_finite() || t < 0.0 {
        return Err(SolveError::InvalidRate {
            from: 0,
            to: 0,
            value: t,
        });
    }
    let mut p0: Vec<f64> = initial.to_vec();
    let s: f64 = p0.iter().sum();
    if s <= 0.0 {
        return Err(SolveError::Singular);
    }
    for p in p0.iter_mut() {
        *p /= s;
    }
    if t == 0.0 {
        return Ok(p0);
    }

    let exit: Vec<f64> = (0..n)
        .map(|i| rates.row(i).iter().map(|e| e.value).sum())
        .collect();
    let max_exit = exit.iter().cloned().fold(0.0, f64::max);
    if max_exit == 0.0 {
        // No transitions at all: distribution is constant.
        return Ok(p0);
    }
    let lambda = max_exit * options.rate_factor.max(1.0);
    let lt = lambda * t;

    let (k_lo, weights) = poisson_weights(lt, options.epsilon);

    // y_k = π(0) P^k where P = I + Q/Λ.
    let mut y = p0;
    let mut result = vec![0.0; n];
    let k_hi = k_lo + weights.len() - 1;
    for k in 0..=k_hi {
        if k >= k_lo {
            let w = weights[k - k_lo];
            for (r, yi) in result.iter_mut().zip(y.iter()) {
                *r += w * yi;
            }
        }
        if k == k_hi {
            break;
        }
        // y ← y P  (P = I + Q/Λ, built on the fly).
        let mut next = vec![0.0; n];
        for i in 0..n {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            next[i] += yi * (1.0 - exit[i] / lambda);
            for e in rates.row(i) {
                if e.index != i {
                    next[e.index] += yi * e.value / lambda;
                }
            }
        }
        y = next;
    }
    // Renormalize to absorb the truncated tail mass.
    let s: f64 = result.iter().sum();
    if s > 0.0 {
        for r in result.iter_mut() {
            *r /= s;
        }
    }
    Ok(result)
}

/// Computes the accumulated state occupancies `L(t) = ∫₀ᵗ π(s) ds` by
/// uniformization: `L(t) = (1/Λ) Σ_k P(N_{Λt} > k) · π(0)Pᵏ`.
///
/// `L(t)/t` is the interval (time-averaged) distribution; combined with a
/// reward vector it yields interval availability.
///
/// # Errors
///
/// Same conditions as [`transient`].
pub fn accumulated(
    rates: &Csr,
    initial: &[f64],
    t: f64,
    options: &TransientOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = rates.rows();
    if n == 0 {
        return Err(SolveError::Empty);
    }
    assert_eq!(initial.len(), n, "initial distribution length mismatch");
    if !t.is_finite() || t < 0.0 {
        return Err(SolveError::InvalidRate {
            from: 0,
            to: 0,
            value: t,
        });
    }
    let mut p0: Vec<f64> = initial.to_vec();
    let s: f64 = p0.iter().sum();
    if s <= 0.0 {
        return Err(SolveError::Singular);
    }
    for p in p0.iter_mut() {
        *p /= s;
    }
    if t == 0.0 {
        return Ok(vec![0.0; n]);
    }

    let exit: Vec<f64> = (0..n)
        .map(|i| rates.row(i).iter().map(|e| e.value).sum())
        .collect();
    let max_exit = exit.iter().cloned().fold(0.0, f64::max);
    if max_exit == 0.0 {
        // Frozen chain: occupancy is initial · t.
        return Ok(p0.into_iter().map(|p| p * t).collect());
    }
    let lambda = max_exit * options.rate_factor.max(1.0);
    let lt = lambda * t;
    let (k_lo, weights) = poisson_weights(lt, options.epsilon);

    // Tail probabilities c_k = P(N > k); ≈ 1 below the truncation window.
    let mut y = p0;
    let mut acc = vec![0.0; n];
    let k_hi = k_lo + weights.len() - 1;
    let mut cdf = 0.0;
    let mut k = 0usize;
    loop {
        if k >= k_lo {
            cdf += weights[k - k_lo];
        }
        let tail = (1.0 - cdf).max(0.0);
        if tail > 0.0 {
            for (a, yi) in acc.iter_mut().zip(&y) {
                *a += tail * yi;
            }
        }
        if k >= k_hi {
            break;
        }
        // y ← y P.
        let mut next = vec![0.0; n];
        for i in 0..n {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            next[i] += yi * (1.0 - exit[i] / lambda);
            for e in rates.row(i) {
                if e.index != i {
                    next[e.index] += yi * e.value / lambda;
                }
            }
        }
        y = next;
        k += 1;
    }
    for a in acc.iter_mut() {
        *a /= lambda;
    }
    // Normalize total occupancy to exactly t (absorbs truncation error).
    let total: f64 = acc.iter().sum();
    if total > 0.0 {
        for a in acc.iter_mut() {
            *a *= t / total;
        }
    }
    Ok(acc)
}

/// Normalized Poisson(λt) weights with left/right truncation.
///
/// Works for arbitrarily large `lt` without under/overflow by building the
/// unnormalized pmf outwards from the mode.
fn poisson_weights(lt: f64, epsilon: f64) -> (usize, Vec<f64>) {
    let mode = lt.floor() as usize;
    // Relative cut-off: weights below cutoff×w_mode are dropped.
    let cutoff = (epsilon / 10.0).max(1e-300);

    // Expand right from the mode.
    let mut right = vec![1.0f64];
    let mut k = mode;
    loop {
        let w = right.last().copied().expect("nonempty") * lt / (k + 1) as f64;
        if w < cutoff || !w.is_finite() {
            break;
        }
        right.push(w);
        k += 1;
        if k > mode + 10_000_000 {
            break;
        }
    }
    // Expand left from the mode.
    let mut left: Vec<f64> = Vec::new();
    let mut w = 1.0f64;
    let mut kk = mode;
    while kk > 0 {
        w *= kk as f64 / lt;
        if w < cutoff {
            break;
        }
        left.push(w);
        kk -= 1;
    }
    let k_lo = mode - left.len();
    let mut weights: Vec<f64> = left.into_iter().rev().collect();
    weights.extend(right);
    let sum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= sum;
    }
    (k_lo, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_weights_sum_to_one() {
        for &lt in &[0.1, 1.0, 25.0, 3000.0] {
            let (_, w) = poisson_weights(lt, 1e-12);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "lt={lt}");
        }
    }

    #[test]
    fn poisson_weights_match_pmf_small() {
        let lt = 2.0f64;
        let (k_lo, w) = poisson_weights(lt, 1e-12);
        // pmf(k) = e^-2 2^k / k!
        let pmf = |k: usize| {
            let mut v = (-lt).exp();
            for i in 1..=k {
                v *= lt / i as f64;
            }
            v
        };
        for (off, &wi) in w.iter().enumerate() {
            let k = k_lo + off;
            assert!((wi - pmf(k)).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn poisson_weights_huge_mean_no_overflow() {
        let (k_lo, w) = poisson_weights(5e5, 1e-10);
        assert!(!w.is_empty());
        assert!(w.iter().all(|x| x.is_finite()));
        // Mean of the truncated distribution ≈ lt.
        let mean: f64 = w
            .iter()
            .enumerate()
            .map(|(off, wi)| (k_lo + off) as f64 * wi)
            .sum();
        assert!((mean - 5e5).abs() / 5e5 < 1e-3);
    }

    #[test]
    fn no_transitions_is_constant() {
        let r = Csr::from_triplets(2, 2, &[]);
        let p = transient(&r, &[0.25, 0.75], 10.0, &TransientOptions::default()).unwrap();
        assert_eq!(p, vec![0.25, 0.75]);
    }

    #[test]
    fn pure_death_matches_exponential() {
        // 0 -> 1 at rate r: p0(t) = exp(-r t).
        let rate = 0.7;
        let r = Csr::from_triplets(2, 2, &[(0, 1, rate)]);
        for &t in &[0.0, 0.3, 1.0, 5.0] {
            let p = transient(&r, &[1.0, 0.0], t, &TransientOptions::default()).unwrap();
            assert!((p[0] - (-rate * t).exp()).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn initial_distribution_is_normalized() {
        let r = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let p = transient(&r, &[2.0, 2.0], 0.5, &TransientOptions::default()).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-12); // symmetric chain stays uniform
    }

    #[test]
    fn negative_time_rejected() {
        let r = Csr::from_triplets(1, 1, &[]);
        assert!(transient(&r, &[1.0], -1.0, &TransientOptions::default()).is_err());
    }

    #[test]
    fn accumulated_occupancy_sums_to_t() {
        let r = Csr::from_triplets(2, 2, &[(0, 1, 0.7), (1, 0, 1.3)]);
        for &t in &[0.5, 3.0, 40.0] {
            let l = accumulated(&r, &[1.0, 0.0], t, &TransientOptions::default()).unwrap();
            assert!((l.iter().sum::<f64>() - t).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn accumulated_matches_two_state_analytic() {
        // Interval availability of a 2-state chain from the up state:
        // A(t) = µ/(λ+µ) + λ/((λ+µ)² t) (1 - e^{-(λ+µ)t}).
        let (l, m) = (0.2, 1.8);
        let r = Csr::from_triplets(2, 2, &[(0, 1, l), (1, 0, m)]);
        for &t in &[0.1, 1.0, 10.0, 100.0] {
            let acc = accumulated(&r, &[1.0, 0.0], t, &TransientOptions::default()).unwrap();
            let avail = acc[0] / t;
            let s = l + m;
            let expect = m / s + l / (s * s * t) * (1.0 - (-s * t).exp());
            assert!((avail - expect).abs() < 1e-8, "t={t}: {avail} vs {expect}");
        }
    }

    #[test]
    fn accumulated_zero_time_is_zero() {
        let r = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let l = accumulated(&r, &[1.0, 0.0], 0.0, &TransientOptions::default()).unwrap();
        assert_eq!(l, vec![0.0, 0.0]);
    }

    #[test]
    fn accumulated_frozen_chain() {
        let r = Csr::from_triplets(2, 2, &[]);
        let l = accumulated(&r, &[0.25, 0.75], 8.0, &TransientOptions::default()).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[1] - 6.0).abs() < 1e-12);
    }
}
