//! Closed-form birth–death processes.
//!
//! The upper-layer redundancy models of the reproduced paper are
//! birth–death chains (number of servers currently down due to patching),
//! so a closed-form solver is both a fast path and an independent check of
//! the general CTMC machinery.

use crate::{Ctmc, SolveError};

/// A birth–death CTMC on states `0..=n` with per-level rates.
///
/// `birth[k]` is the rate `k -> k+1` and `death[k]` the rate `k+1 -> k`.
///
/// # Examples
///
/// The M/M/1 queue with utilization ρ has geometric steady state:
///
/// ```
/// use redeval_markov::BirthDeath;
///
/// # fn main() -> Result<(), redeval_markov::SolveError> {
/// let n = 50;
/// let (lambda, mu) = (0.5, 1.0);
/// let bd = BirthDeath::homogeneous(n, lambda, mu);
/// let pi = bd.steady_state()?;
/// assert!((pi[0] - 0.5).abs() < 1e-9); // 1 - ρ with tiny truncation error
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeath {
    birth: Vec<f64>,
    death: Vec<f64>,
}

impl BirthDeath {
    /// Creates a birth–death chain from per-level birth and death rates.
    ///
    /// `birth.len()` must equal `death.len()`; the chain then has
    /// `birth.len() + 1` states.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(birth: Vec<f64>, death: Vec<f64>) -> Self {
        assert_eq!(
            birth.len(),
            death.len(),
            "birth and death rate vectors must have equal length"
        );
        BirthDeath { birth, death }
    }

    /// A chain with constant birth rate `lambda` and death rate `mu` on
    /// states `0..=n`.
    pub fn homogeneous(n: usize, lambda: f64, mu: f64) -> Self {
        BirthDeath::new(vec![lambda; n], vec![mu; n])
    }

    /// The machine-repair style chain used for redundancy under patching:
    /// `n` servers, each going down independently at `lambda` (birth of a
    /// failure) and each down server recovering independently at `mu`.
    ///
    /// State `k` = number of down servers; birth rate `(n-k)·λ`, death rate
    /// `k·µ`.
    pub fn machine_repair(n: usize, lambda: f64, mu: f64) -> Self {
        let birth = (0..n).map(|k| (n - k) as f64 * lambda).collect();
        let death = (0..n).map(|k| (k + 1) as f64 * mu).collect();
        BirthDeath::new(birth, death)
    }

    /// Number of states (`levels + 1`).
    pub fn len(&self) -> usize {
        self.birth.len() + 1
    }

    /// Whether the chain has a single state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Closed-form steady state via the detailed-balance product formula.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidRate`] for non-finite/negative rates,
    /// or [`SolveError::Reducible`] when a zero death rate makes lower
    /// states unreachable (no unique stationary distribution on `0..=n`).
    pub fn steady_state(&self) -> Result<Vec<f64>, SolveError> {
        let n = self.birth.len();
        for (k, (&b, &d)) in self.birth.iter().zip(&self.death).enumerate() {
            for v in [b, d] {
                if !v.is_finite() || v < 0.0 {
                    return Err(SolveError::InvalidRate {
                        from: k,
                        to: k + 1,
                        value: v,
                    });
                }
            }
        }
        // Product form: π_k = π_0 Π_{j<k} birth_j / death_j.
        let mut weights = vec![1.0f64; n + 1];
        for k in 0..n {
            if self.birth[k] == 0.0 {
                // Levels above k are unreachable; they get weight 0.
                for w in weights.iter_mut().skip(k + 1) {
                    *w = 0.0;
                }
                break;
            }
            if self.death[k] == 0.0 {
                return Err(SolveError::Reducible);
            }
            weights[k + 1] = weights[k] * self.birth[k] / self.death[k];
        }
        let total: f64 = weights.iter().sum();
        Ok(weights.into_iter().map(|w| w / total).collect())
    }

    /// Expected steady-state reward `Σ_k π_k · reward(k)` where `k` is the
    /// level (e.g. the number of down servers).
    ///
    /// # Errors
    ///
    /// See [`steady_state`](Self::steady_state).
    pub fn expected_reward<F>(&self, reward: F) -> Result<f64, SolveError>
    where
        F: Fn(usize) -> f64,
    {
        let pi = self.steady_state()?;
        Ok(pi.iter().enumerate().map(|(k, p)| p * reward(k)).sum())
    }

    /// Converts to a general [`Ctmc`] (for cross-checks and transient
    /// analysis).
    pub fn to_ctmc(&self) -> Ctmc {
        let n = self.birth.len();
        let mut c = Ctmc::new(n + 1);
        for k in 0..n {
            c.add_transition(k, k + 1, self.birth[k]);
            c.add_transition(k + 1, k, self.death[k]);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_matches_two_state() {
        let bd = BirthDeath::new(vec![0.2], vec![0.8]);
        let pi = bd.steady_state().unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn matches_general_ctmc_solver() {
        let bd = BirthDeath::machine_repair(4, 0.3, 1.7);
        let closed = bd.steady_state().unwrap();
        let general = bd.to_ctmc().steady_state().unwrap();
        for (a, b) in closed.iter().zip(general.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn machine_repair_binomial_form() {
        // Independent servers: π_k = C(n,k) q^k (1-q)^{n-k}, q = λ/(λ+µ).
        let (n, l, m) = (3usize, 0.1, 0.9);
        let bd = BirthDeath::machine_repair(n, l, m);
        let pi = bd.steady_state().unwrap();
        let q = l / (l + m);
        let binom = |n: usize, k: usize| -> f64 {
            let mut v = 1.0;
            for i in 0..k {
                v *= (n - i) as f64 / (i + 1) as f64;
            }
            v
        };
        for (k, &p) in pi.iter().enumerate() {
            let expect = binom(n, k) * q.powi(k as i32) * (1.0 - q).powi((n - k) as i32);
            assert!((p - expect).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn zero_birth_truncates_upper_levels() {
        let bd = BirthDeath::new(vec![1.0, 0.0], vec![1.0, 1.0]);
        let pi = bd.steady_state().unwrap();
        assert_eq!(pi[2], 0.0);
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_death_is_reducible() {
        let bd = BirthDeath::new(vec![1.0], vec![0.0]);
        assert_eq!(bd.steady_state(), Err(SolveError::Reducible));
    }

    #[test]
    fn invalid_rate_rejected() {
        let bd = BirthDeath::new(vec![-1.0], vec![1.0]);
        assert!(matches!(
            bd.steady_state(),
            Err(SolveError::InvalidRate { .. })
        ));
    }

    #[test]
    fn expected_reward_counts_up_servers() {
        let n = 2;
        let bd = BirthDeath::machine_repair(n, 1.0, 1.0);
        // With λ=µ, each server is down half the time: E[up] = n/2.
        let e = bd.expected_reward(|down| (n - down) as f64).unwrap();
        assert!((e - 1.0).abs() < 1e-12);
    }
}
