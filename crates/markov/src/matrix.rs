//! Minimal dense and sparse matrix types used by the solvers.
//!
//! These are deliberately small: the solvers need row iteration, column
//! iteration, matrix–vector products and an LU-style dense solve — nothing
//! more — so we implement exactly that instead of pulling in a linear
//! algebra dependency.

use crate::SolveError;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use redeval_markov::matrix::Dense;
///
/// let mut a = Dense::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Computes `self * x` for a column vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Computes the row-vector product `x * self`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                y[j] += xi * a;
            }
        }
        y
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// The matrix must be square; `self` is not modified.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // Partial pivoting.
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(SolveError::Singular);
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / d;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in col + 1..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Dense {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Dense {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

/// One entry of a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Column (or row, for column-major storage) index.
    pub index: usize,
    /// Value.
    pub value: f64,
}

/// A compressed sparse row matrix built from triplets.
///
/// Duplicate `(row, col)` entries are summed. Also keeps the transpose
/// index so solvers can iterate incoming transitions cheaply.
///
/// # Examples
///
/// ```
/// use redeval_markov::matrix::Csr;
///
/// let m = Csr::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0), (0, 1, 1.0)]);
/// assert_eq!(m.row(0), &[redeval_markov::matrix::Entry { index: 1, value: 4.0 }]);
/// let y = m.vecmat(&[1.0, 1.0]);
/// assert_eq!(y, vec![4.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    row_entries: Vec<Entry>,
    col_ptr: Vec<usize>,
    col_entries: Vec<Entry>,
}

impl Csr {
    /// Builds a matrix from `(row, col, value)` triplets, summing duplicates
    /// and dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if a triplet index is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<Entry>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            per_row[r].push(Entry { index: c, value: v });
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut row_entries = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|e| e.index);
            let mut merged: Vec<Entry> = Vec::with_capacity(row.len());
            for e in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.index == e.index => last.value += e.value,
                    _ => merged.push(*e),
                }
            }
            merged.retain(|e| e.value != 0.0);
            row_entries.extend_from_slice(&merged);
            row_ptr.push(row_entries.len());
        }

        // Transpose index.
        let mut per_col: Vec<Vec<Entry>> = vec![Vec::new(); cols];
        for r in 0..rows {
            for e in &row_entries[row_ptr[r]..row_ptr[r + 1]] {
                per_col[e.index].push(Entry {
                    index: r,
                    value: e.value,
                });
            }
        }
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut col_entries = Vec::new();
        col_ptr.push(0);
        for col in per_col {
            col_entries.extend_from_slice(&col);
            col_ptr.push(col_entries.len());
        }

        Csr {
            rows,
            cols,
            row_ptr,
            row_entries,
            col_ptr,
            col_entries,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.row_entries.len()
    }

    /// The non-zero entries of row `r` (sorted by column).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[Entry] {
        assert!(r < self.rows, "row {r} out of range");
        &self.row_entries[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The non-zero entries of column `c` (as `(row, value)` pairs).
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> &[Entry] {
        assert!(c < self.cols, "column {c} out of range");
        &self.col_entries[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Value at `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r)
            .binary_search_by_key(&c, |e| e.index)
            .map(|k| self.row(r)[k].value)
            .unwrap_or(0.0)
    }

    /// Row-vector product `x * self`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for e in self.row(r) {
                y[e.index] += xr * e.value;
            }
        }
        y
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|e| e.value * x[e.index]).sum())
            .collect()
    }

    /// Converts to a dense matrix (for small systems / tests).
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for e in self.row(r) {
                d[(r, e.index)] += e.value;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_solve_identity() {
        let a = Dense::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_solve_requires_pivoting() {
        // First pivot is zero; solvable only with row swaps.
        let mut a = Dense::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn dense_solve_singular() {
        let a = Dense::zeros(2, 2);
        assert_eq!(a.solve(&[1.0, 1.0]), Err(SolveError::Singular));
    }

    #[test]
    fn dense_solve_random_roundtrip() {
        // A fixed well-conditioned system.
        let mut a = Dense::zeros(3, 3);
        let vals = [[4.0, 1.0, -0.5], [1.0, 5.0, 2.0], [-0.5, 2.0, 6.0]];
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = vals[i][j];
            }
        }
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_vecmat_matches_matvec_of_transpose() {
        let mut a = Dense::zeros(2, 3);
        a[(0, 0)] = 1.0;
        a[(0, 2)] = 2.0;
        a[(1, 1)] = 3.0;
        let y = a.vecmat(&[2.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn csr_merges_duplicates_and_drops_zeros() {
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (0, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn csr_column_index_is_transpose() {
        let m = Csr::from_triplets(3, 3, &[(0, 1, 5.0), (2, 1, 7.0), (1, 0, 1.0)]);
        let col1: Vec<_> = m.col(1).iter().map(|e| (e.index, e.value)).collect();
        assert_eq!(col1, vec![(0, 5.0), (2, 7.0)]);
    }

    #[test]
    fn csr_products_match_dense() {
        let trips = [(0, 1, 2.0), (1, 0, 3.0), (1, 2, 4.0), (2, 2, 5.0)];
        let s = Csr::from_triplets(3, 3, &trips);
        let d = s.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(s.matvec(&x), d.matvec(&x));
        assert_eq!(s.vecmat(&x), d.vecmat(&x));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csr_rejects_out_of_range() {
        let _ = Csr::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }
}
