//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate API used by this workspace.
//!
//! The build environment has no network access, so the workspace vendors the
//! few items it actually consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen`] for `f64`/integers/`bool`. The generator is
//! **xoshiro256\*\*** seeded through SplitMix64 — a different stream than the
//! real `StdRng` (ChaCha12), but with the same determinism contract: equal
//! seeds give equal streams, and all workspace code relies only on that.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no source changes are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution of the real crate.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Not the same stream as the real `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference implementation.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
