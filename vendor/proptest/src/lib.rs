//! Offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest/1) crate API used by this
//! workspace's property tests.
//!
//! The build environment has no network access, so this crate implements the
//! pieces the five `prop_*.rs` test suites consume:
//!
//! * the [`Strategy`] trait with [`prop_map`](Strategy::prop_map),
//!   [`boxed`](Strategy::boxed) and
//!   [`prop_recursive`](Strategy::prop_recursive);
//! * strategies for numeric ranges, tuples (up to arity 10), [`Just`],
//!   [`Union`] (behind [`prop_oneof!`]) and [`collection::vec()`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros and [`ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the assertion
//!   message) but is not minimized;
//! * **fixed seeding** — each test function derives its RNG seed from its
//!   own module path, so runs are fully deterministic and reproducible
//!   rather than driven by OS entropy;
//! * failures panic directly instead of going through a `TestRunner` report.
//!
//! All of these are strictly-weaker behaviours of the same API, so swapping
//! the real crate back in requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _, SeedableRng};

/// Deterministic RNG handed to [`Strategy::sample`].
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates an RNG whose seed is derived (FNV-1a) from `name`, so each
    /// test function gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.inner.next_u64() % n as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.inner.next_u64() % (hi - lo)
    }
}

/// A recipe for generating values of type [`Value`](Strategy::Value).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into one more level of structure, up to
    /// `depth` levels. The `_desired_size`/`_expected_branch_size` hints of
    /// the real crate are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At every level an even coin decides leaf vs one more branch,
            // so depth is bounded and expected size stays small.
            let deeper = branch(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Clonable, type-erased strategy (`Rc`-backed; tests are single-threaded
/// per function, so no `Send` is needed).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies with the same value type
/// (what [`prop_oneof!`] builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Treat the closed interval as half-open plus an explicit chance of
        // the endpoint, so `..=1.0` really can produce 1.0.
        let (lo, hi) = (*self.start(), *self.end());
        if rng.index(1 << 16) == 0 {
            hi
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by a failed `prop_assert*!`; carries the rendered message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests.
///
/// Supports the real crate's syntax for an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments use `name in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies sharing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 2.0f64..5.0, n in 1u32..7, k in 0usize..3) {
            prop_assert!((2.0..5.0).contains(&x));
            prop_assert!((1..7).contains(&n));
            prop_assert!(k < 3);
        }

        #[test]
        fn vec_and_tuple_compose(
            v in prop::collection::vec((0.0f64..1.0, 1u32..4), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (x, n) in &v {
                prop_assert!((0.0..1.0).contains(x), "x = {x}");
                prop_assert!((1..4).contains(n));
            }
        }

        #[test]
        fn oneof_and_just_yield_all_variants(
            xs in prop::collection::vec(prop_oneof![Just(1u32), Just(2), Just(3)], 1..50),
        ) {
            for x in &xs {
                prop_assert!((1..=3).contains(x));
            }
        }

        #[test]
        fn recursive_depth_is_bounded(
            t in Just(Tree::Leaf(0)).prop_recursive(3, 24, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            }),
        ) {
            prop_assert!(depth(&t) <= 4, "depth {}", depth(&t));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0.0f64..1.0).prop_map(|x| x * 2.0);
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
