//! Offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) crate API used by the
//! workspace's `crates/bench/benches/*` harnesses.
//!
//! The build environment has no network access, so this crate provides the
//! consumed surface — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`] and
//! [`black_box`] — with a deliberately simple measurement loop:
//!
//! * each benchmark runs one warm-up call, then `sample_size` timed
//!   iterations, and prints mean time per iteration;
//! * no statistical analysis, outlier rejection, plots or baselines;
//! * when invoked by `cargo test` (Cargo passes `--test` to
//!   `harness = false` bench targets) every benchmark body runs **once**,
//!   untimed, so `cargo test` stays fast while still smoke-testing benches.
//!
//! Swapping the real crate back in requires no changes to the bench sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Set when the binary is run in `cargo test` smoke mode (see crate docs).
static SMOKE_MODE: AtomicBool = AtomicBool::new(false);

/// Re-export of [`std::hint::black_box`], for parity with the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point collecting benchmark definitions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if SMOKE_MODE.load(Ordering::Relaxed) {
            std::hint::black_box(f());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size as u64;
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if SMOKE_MODE.load(Ordering::Relaxed) {
        println!("{id:<50} ok (smoke)");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{id:<50} time: {:>12} /iter  ({} iters)",
            format_time(per_iter),
            b.iters
        );
    } else {
        println!("{id:<50} (no measurement — Bencher::iter never called)");
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Runtime support for [`criterion_main!`]; not part of the public API.
#[doc(hidden)]
pub fn __enter_main() {
    // Cargo runs `harness = false` bench targets during `cargo test` with a
    // `--test` argument (criterion proper has the same convention).
    if std::env::args().any(|a| a == "--test") {
        SMOKE_MODE.store(true, Ordering::Relaxed);
    }
}

/// Defines a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::__enter_main();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("unit/test", |b| {
            b.iter(|| calls += 1);
        });
        // Warm-up + sample_size iterations (cargo test passes `--test` only
        // to bench targets, not unit tests, so full mode runs here).
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let input = 21u64;
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| seen = n * 2);
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
        assert_eq!(seen, 42);
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
