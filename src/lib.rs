//! `redeval-suite` — facade over the `redeval` workspace.
//!
//! This crate re-exports every member crate under one roof and hosts the
//! runnable `examples/` and the cross-crate integration `tests/` of the
//! repository. Depend on the individual crates
//! (`redeval`, [`redeval_harm`], [`redeval_avail`],
//! [`redeval_srn`], [`redeval_markov`], [`redeval_cvss`], [`redeval_sim`])
//! for finer-grained builds. The serving layer ([`redeval_server`]) is
//! re-exported too; its CLI front door is `redeval serve` in
//! `redeval-bench`.
//!
//! # Examples
//!
//! ```
//! use redeval_suite::prelude::*;
//!
//! # fn main() -> Result<(), redeval::EvalError> {
//! let evaluator = redeval::case_study::evaluator()?;
//! let e = evaluator.evaluate("case study", &[1, 2, 2, 1])?;
//! assert!((e.coa - 0.99707).abs() < 5e-5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use redeval;
pub use redeval_avail;
pub use redeval_cvss;
pub use redeval_harm;
pub use redeval_markov;
pub use redeval_server;
pub use redeval_sim;
pub use redeval_srn;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use redeval::case_study;
    pub use redeval::charts;
    pub use redeval::cost::CostModel;
    pub use redeval::decision::{MultiBounds, ScatterBounds};
    pub use redeval::exec::{self, AnalysisCache, Experiment, Scenario, Sweep};
    pub use redeval::{
        AspStrategy, AttackGraph, AttackTree, Design, DesignEvaluation, Durations, EvalError,
        Evaluator, Harm, MetricsConfig, NetworkModel, NetworkSpec, OrCombine, PatchPolicy,
        SecurityMetrics, ServerParams, Tier, TierSpec, Vulnerability,
    };
    pub use redeval_avail::{AggregatedRates, ServerAnalysis, ServerModel};
    pub use redeval_markov::{BirthDeath, Ctmc, Dtmc};
    pub use redeval_sim::{estimate_asp, simulate_coa, Simulation};
    pub use redeval_srn::{Srn, SrnError};
}
