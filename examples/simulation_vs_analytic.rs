//! Cross-validation: discrete-event simulation versus the analytic models.
//!
//! Runs the Monte-Carlo engines of `redeval-sim` against the case study:
//!
//! 1. COA of the upper-layer network model (simulated SRN vs product-form
//!    CTMC solution);
//! 2. network attack success probability (vulnerability-level Monte Carlo
//!    vs the three analytic ASP aggregation strategies).
//!
//! Run with: `cargo run --release --example simulation_vs_analytic`

use redeval::case_study;
use redeval::{AspStrategy, MetricsConfig};
use redeval_sim::{estimate_asp, simulate_coa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = case_study::network();

    // ---- availability ----
    let analyses = spec.tier_analyses()?;
    let model = spec.network_model(&analyses);
    let analytic_coa = model.coa()?;
    println!("analytic COA           : {analytic_coa:.6}");

    let horizon_hours = 2_000_000.0; // ~2800 patch cycles per server
    let est = simulate_coa(&model, horizon_hours, 20_240_612)?;
    println!(
        "simulated COA          : {:.6} ± {:.6} (95% CI, {:.0} h horizon)",
        est.mean, est.ci95, horizon_hours
    );
    let diff = (est.mean - analytic_coa).abs();
    println!("difference             : {diff:.2e}");
    assert!(
        diff < (3.0 * est.ci95).max(3e-4),
        "simulation disagrees with the analytic model"
    );

    // ---- security ----
    println!();
    let harm = spec.build_harm().patched_critical(8.0);
    let mc = estimate_asp(&harm, 400_000, 7);
    println!(
        "Monte-Carlo ASP (after): {:.4} ± {:.4} (95% CI, {} trials)",
        mc.mean, mc.ci95, mc.trials
    );
    for strategy in [
        AspStrategy::MaxPath,
        AspStrategy::Reliability,
        AspStrategy::NoisyOrPaths,
    ] {
        let m = harm.metrics(&MetricsConfig {
            asp: strategy,
            ..Default::default()
        });
        println!(
            "analytic ASP {:<22}: {:.4}",
            format!("({strategy:?})"),
            m.attack_success_probability
        );
    }
    // The exact-reliability strategy should match the simulation within
    // noise (same independence assumptions).
    let exact = harm
        .metrics(&MetricsConfig {
            asp: AspStrategy::Reliability,
            ..Default::default()
        })
        .attack_success_probability;
    assert!(
        (mc.mean - exact).abs() < 4.0 * mc.ci95,
        "Monte-Carlo ASP {} deviates from exact reliability {}",
        mc.mean,
        exact
    );
    println!();
    println!("simulation and analytic models agree.");
    Ok(())
}
