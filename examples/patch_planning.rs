//! Patch planning: sweep the patch interval (the paper's Section V
//! "patch schedule" extension) and compare patch policies.
//!
//! For the case-study network, shows how the patch frequency trades
//! exposure to critical vulnerabilities (time spent unpatched) against
//! patch-induced capacity loss, and how the `CriticalOnly` policy compares
//! with patching everything.
//!
//! Run with: `cargo run --example patch_planning`

use redeval::case_study;
use redeval::{Durations, Evaluator, MetricsConfig, PatchPolicy};

fn main() -> Result<(), redeval::EvalError> {
    println!("== patch interval sweep (case-study network, critical-only policy) ==");
    println!();
    println!(
        "{:>10} {:>12} {:>10} {:>14}",
        "interval", "COA", "downtime", "patches/year"
    );

    let mut last_coa = 0.0;
    for days in [7.0, 14.0, 30.0, 60.0, 90.0, 180.0] {
        let base = case_study::network();
        let interval = Durations::days(days);
        // Apply the schedule to every tier.
        let tiers = base
            .tiers()
            .iter()
            .cloned()
            .map(|mut t| {
                t.params.patch_interval = interval;
                t
            })
            .collect::<Vec<_>>();
        let spec = redeval::NetworkSpec::new(tiers, base.edges().to_vec());

        let evaluator = Evaluator::new(spec)?;
        let e = evaluator.evaluate("case study", &[1, 2, 2, 1])?;
        let downtime_hours_month = (1.0 - e.coa) * 720.0;
        println!(
            "{:>8.0} d {:>12.5} {:>8.2} h {:>14.1}",
            days,
            e.coa,
            downtime_hours_month,
            365.25 / days
        );
        // More frequent patching must not *increase* COA.
        assert!(e.coa >= last_coa - 1e-9);
        last_coa = e.coa;
    }

    println!();
    println!("== patch policy comparison (monthly schedule) ==");
    println!();
    // One evaluator per policy over the same network: a shared analysis
    // cache solves each tier's SRN once instead of once per evaluator.
    let cache = redeval::exec::AnalysisCache::new();
    for (name, policy) in [
        ("none", PatchPolicy::None),
        ("critical-only (>8.0)", PatchPolicy::CriticalOnly(8.0)),
        ("critical-only (>7.0)", PatchPolicy::CriticalOnly(7.0)),
        ("all", PatchPolicy::All),
    ] {
        let evaluator = Evaluator::with_cache(
            case_study::network(),
            MetricsConfig::default(),
            policy,
            &cache,
        )?;
        let e = evaluator.evaluate("case study", &[1, 2, 2, 1])?;
        println!(
            "{:<22} ASP {:>6.4}  NoEV {:>2}  NoAP {:>2}  NoEP {:>2}",
            name,
            e.after.attack_success_probability,
            e.after.exploitable_vulnerabilities,
            e.after.attack_paths,
            e.after.entry_points
        );
    }
    Ok(())
}
