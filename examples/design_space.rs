//! Design-space search: enumerate every redundancy design up to a given
//! per-tier maximum and report the Pareto frontier between after-patch
//! security (ASP) and capacity-oriented availability.
//!
//! This extends the paper's five hand-picked designs (Section IV) to the
//! full `max_redundancy^4` space and shows which designs are undominated.
//!
//! Run with: `cargo run --example design_space [max_redundancy]`

use redeval::case_study;
use redeval::decision::pareto_frontier_batch;
use redeval::exec::default_threads;

fn main() -> Result<(), redeval::EvalError> {
    let max_redundancy: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let evaluator = case_study::evaluator()?;
    let designs = evaluator.base().enumerate_designs(max_redundancy);
    println!(
        "evaluating {} designs (1..={} servers per tier) on {} thread(s)",
        designs.len(),
        max_redundancy,
        default_threads()
    );

    // The whole space evaluates on the batch worker pool; results come
    // back in design order, identical to the sequential path.
    let evals = evaluator.evaluate_batch(&designs, default_threads())?;

    // Pareto frontier: not dominated by any other design.
    let frontier = pareto_frontier_batch(&evals, default_threads());

    println!();
    println!(
        "{:<36} {:>8} {:>9} {:>8}",
        "design", "ASP", "COA", "servers"
    );
    println!("{}", "-".repeat(66));
    for e in &frontier {
        println!(
            "{:<36} {:>8.4} {:>9.5} {:>8}",
            e.name,
            e.after.attack_success_probability,
            e.coa,
            e.total_servers()
        );
    }
    println!();
    println!(
        "{} of {} designs are Pareto-optimal (lower ASP, higher COA)",
        frontier.len(),
        evals.len()
    );

    // Sanity: the non-redundant design is always on the frontier (lowest
    // attack surface).
    assert!(frontier.iter().any(|e| e.total_servers() == 4));
    Ok(())
}
