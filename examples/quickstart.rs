//! Quickstart: evaluate the paper's case-study network end to end.
//!
//! Builds the Figure-2 enterprise network (1 DNS + 2 WEB + 2 APP + 1 DB),
//! computes the security metrics before/after the monthly critical-patch
//! round (Table II) and the capacity-oriented availability (Table VI),
//! then checks an administrator policy.
//!
//! Run with: `cargo run --example quickstart`

use redeval::case_study;
use redeval::decision::ScatterBounds;

fn main() -> Result<(), redeval::EvalError> {
    // Phase 1+2: inputs and model construction (the evaluator solves the
    // per-tier server SRNs once).
    let evaluator = case_study::evaluator()?;

    // Phase 3: evaluate the case-study design.
    let e = evaluator.evaluate("1 DNS + 2 WEB + 2 APP + 1 DB", &[1, 2, 2, 1])?;

    println!("design: {}", e.name);
    println!();
    println!("security (before patch):  {}", e.before);
    println!("security (after patch):   {}", e.after);
    println!();
    println!("capacity-oriented availability: {:.5}", e.coa);
    println!("classical availability:         {:.6}", e.availability);
    println!(
        "expected running servers:       {:.3} / {}",
        e.expected_up,
        e.total_servers()
    );

    // Decide against administrator bounds (Equation (3)).
    let bounds = ScatterBounds {
        max_asp: 0.35,
        min_coa: 0.9965,
    };
    println!();
    println!(
        "meets (ASP <= {}, COA >= {})? {}",
        bounds.max_asp,
        bounds.min_coa,
        if bounds.satisfied(&e) { "yes" } else { "no" }
    );

    // The monthly patch sharply reduces the attack surface.
    assert!(e.after.attack_success_probability < e.before.attack_success_probability);
    assert!(e.after.exploitable_vulnerabilities < e.before.exploitable_vulnerabilities);
    Ok(())
}
