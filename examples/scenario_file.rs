//! Bring your own network as a data file: author a scenario document in
//! code, serialize it to the canonical JSON that `redeval eval --scenario`
//! consumes, load it back, and evaluate the full design × policy grid —
//! no recompilation between network variants.
//!
//! Run with: `cargo run --example scenario_file`

use redeval::exec::Sweep;
use redeval::scenario::{builtin, ScenarioDoc, TierDef, TreeDef, VulnDef, VulnSource};
use redeval::{Design, PatchPolicy, ServerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a document. (In practice you would start from
    //    `redeval scenario export <name> > mine.json` and edit the file.)
    let mut doc = ScenarioDoc::new("two-dmz", "Two-DMZ deployment from a data file");
    doc.description = "A VPN DMZ and a web DMZ feeding one ledger database.".into();
    doc.vulnerabilities = vec![
        VulnDef {
            id: "vpn-rce".into(),
            cve: None,
            source: VulnSource::Vector("AV:N/AC:M/Au:N/C:C/I:C/A:C".into()),
        },
        VulnDef {
            id: "portal-sqli".into(),
            cve: None,
            source: VulnSource::Vector("AV:N/AC:L/Au:S/C:P/I:P/A:P".into()),
        },
        VulnDef {
            id: "ledger-auth".into(),
            cve: None,
            source: VulnSource::Explicit {
                impact: 9.2,
                probability: 0.49,
                base_score: None,
            },
        },
    ];
    doc.trees = vec![
        (
            "vpn".into(),
            TreeDef::Or(vec![TreeDef::Vuln("vpn-rce".into())]),
        ),
        (
            "portal".into(),
            TreeDef::Or(vec![TreeDef::Vuln("portal-sqli".into())]),
        ),
        (
            "ledger".into(),
            TreeDef::Or(vec![TreeDef::And(vec![
                TreeDef::Vuln("portal-sqli".into()),
                TreeDef::Vuln("ledger-auth".into()),
            ])]),
        ),
    ];
    let tier = |name: &str, count, tree: &str, entry, target| TierDef {
        name: name.into(),
        count,
        params: ServerParams::builder(name).build(),
        tree: Some(tree.into()),
        entry,
        target,
    };
    doc.tiers = vec![
        tier("vpn", 2, "vpn", true, false),
        tier("portal", 2, "portal", true, false),
        tier("ledger", 1, "ledger", false, true),
    ];
    doc.edges = vec![
        ("vpn".into(), "portal".into()),
        ("vpn".into(), "ledger".into()),
        ("portal".into(), "ledger".into()),
    ];
    doc.designs = vec![
        doc.base_design(),
        Design::new("hardened ledger", vec![2, 2, 2]),
    ];
    doc.policies = vec![PatchPolicy::CriticalOnly(8.0), PatchPolicy::All];

    // 2. Serialize to the interchange form and load it back, exactly as
    //    the CLI would from a file on disk.
    let json = doc.to_json();
    let loaded = ScenarioDoc::from_json(&json)?;
    assert_eq!(loaded, doc, "canonical JSON round-trips");
    println!(
        "document `{}`: {} bytes of canonical JSON, {} tiers, {} designs",
        loaded.name,
        json.len(),
        loaded.tiers.len(),
        loaded.designs.len()
    );

    // 3. Evaluate the declared grid on the batch engine.
    println!(
        "\n{:<28} {:>8} {:>6} {:>9}",
        "scenario", "asp", "noap", "coa"
    );
    for e in Sweep::from_scenario(&loaded)?.run()? {
        println!(
            "{:<28} {:>8.4} {:>6} {:>9.5}",
            e.name, e.after.attack_success_probability, e.after.attack_paths, e.coa
        );
    }

    // 4. The bundled gallery works the same way — here is the paper's
    //    network loaded through its own exported document.
    let paper = ScenarioDoc::from_json(&builtin::paper_case_study().to_json())?;
    let evals = Sweep::from_scenario(&paper)?.run()?;
    println!(
        "\npaper case study via the scenario API: {} designs, best COA {:.5}",
        evals.len(),
        evals.iter().map(|e| e.coa).fold(f64::MIN, f64::max)
    );
    Ok(())
}
