//! Modelling your own network: a heterogeneous two-DMZ deployment that is
//! *not* the paper's case study, built from scratch with the public API.
//!
//! Demonstrates: custom attack trees (AND/OR structure), CVSS-vector-driven
//! vulnerability data, per-tier failure/patch parameters, heterogeneous
//! redundancy (the paper's Section V extension), and the multi-metric
//! decision function of Equation (4).
//!
//! Run with: `cargo run --example custom_network`

use redeval::decision::MultiBounds;
use redeval::{
    AttackTree, Durations, Evaluator, NetworkSpec, ServerParams, TierSpec, Vulnerability,
};
use redeval_cvss::v2::BaseVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Vulnerabilities straight from CVSS v2 vectors.
    let vpn_rce: BaseVector = "AV:N/AC:M/Au:N/C:C/I:C/A:C".parse()?;
    let portal_sqli: BaseVector = "AV:N/AC:L/Au:S/C:P/I:P/A:P".parse()?;
    let broker_dos: BaseVector = "AV:N/AC:L/Au:N/C:N/I:N/A:C".parse()?;
    let kernel_lpe: BaseVector = "AV:L/AC:L/Au:N/C:C/I:C/A:C".parse()?;
    let ledger_auth: BaseVector = "AV:N/AC:H/Au:S/C:C/I:C/A:N".parse()?;

    let vpn_tree = AttackTree::leaf(Vulnerability::from_cvss_v2("CVE-VPN-1", &vpn_rce));
    // The portal needs SQLi *and* a local privilege escalation for root.
    let portal_tree = AttackTree::or(vec![
        AttackTree::and(vec![
            AttackTree::leaf(Vulnerability::from_cvss_v2("CVE-PORTAL-1", &portal_sqli)),
            AttackTree::leaf(Vulnerability::from_cvss_v2("CVE-KERNEL-1", &kernel_lpe)),
        ]),
        AttackTree::leaf(Vulnerability::from_cvss_v2("CVE-BROKER-1", &broker_dos)),
    ]);
    let ledger_tree = AttackTree::leaf(Vulnerability::from_cvss_v2("CVE-LEDGER-1", &ledger_auth));

    // Heterogeneous tiers: the ledger patches slowly (database-style), the
    // VPN concentrator reboots fast.
    let spec = NetworkSpec::new(
        vec![
            TierSpec {
                name: "vpn".into(),
                count: 2,
                params: ServerParams::builder("vpn")
                    .service_patch(Durations::minutes(5.0), Durations::minutes(2.0))
                    .os_patch(Durations::minutes(10.0), Durations::minutes(5.0))
                    .build(),
                tree: Some(vpn_tree),
                entry: true,
                target: false,
            },
            TierSpec {
                name: "portal".into(),
                count: 2,
                params: ServerParams::builder("portal")
                    .service_patch(Durations::minutes(15.0), Durations::minutes(5.0))
                    .os_patch(Durations::minutes(20.0), Durations::minutes(10.0))
                    .build(),
                tree: Some(portal_tree),
                entry: false,
                target: false,
            },
            TierSpec {
                name: "ledger".into(),
                count: 1,
                params: ServerParams::builder("ledger")
                    .service_patch(Durations::minutes(30.0), Durations::minutes(10.0))
                    .os_patch(Durations::minutes(30.0), Durations::minutes(10.0))
                    .service_failure(Durations::hours(1000.0), Durations::minutes(45.0))
                    .build(),
                tree: Some(ledger_tree),
                entry: false,
                target: true,
            },
        ],
        vec![(0, 1), (1, 2)],
    );

    // Print the HARM for inspection (Graphviz DOT).
    let harm = spec.build_harm();
    println!("--- HARM (render with `dot -Tsvg`) ---");
    println!("{}", harm.to_dot());

    let evaluator = Evaluator::new(spec)?;
    let bounds = MultiBounds {
        max_asp: 0.5,
        max_noev: 8,
        max_noap: 4,
        max_noep: 2,
        min_coa: 0.9955,
    };

    println!("--- designs ---");
    for counts in [[1, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2], [3, 2, 2]] {
        let name = counts
            .iter()
            .zip(["vpn", "portal", "ledger"])
            .map(|(c, n)| format!("{c} {n}"))
            .collect::<Vec<_>>()
            .join(" + ");
        let e = evaluator.evaluate(&name, &counts)?;
        println!(
            "{:<28} ASP {:>6.4}  NoEV {:>2}  NoAP {:>2}  COA {:.5}  ok={}",
            e.name,
            e.after.attack_success_probability,
            e.after.exploitable_vulnerabilities,
            e.after.attack_paths,
            e.coa,
            bounds.satisfied(&e)
        );
    }
    Ok(())
}
