//! Attack-surface analysis workflow: build the network from a
//! zone/firewall description, find the most attack-enabling hosts and
//! vulnerabilities, and derive a prioritized patch schedule.
//!
//! Run with: `cargo run --example attack_surface`

use redeval_harm::topology::TopologyBuilder;
use redeval_harm::{AttackTree, Harm, MetricsConfig, Vulnerability};

fn main() {
    // 1. Describe the segmented network (zones + firewall rules), the way
    //    an administrator thinks about it.
    let mut b = TopologyBuilder::new();
    let dmz = b.zone("dmz");
    let app_net = b.zone("app-net");
    let data = b.zone("data");
    let lb1 = b.host("lb1", dmz);
    let lb2 = b.host("lb2", dmz);
    let api1 = b.host("api1", app_net);
    let api2 = b.host("api2", app_net);
    let vault = b.host("vault", data);
    b.expose_to_internet(dmz);
    b.allow(dmz, app_net);
    b.allow(app_net, data);
    b.allow_intra_zone(); // lateral movement within subnets
    let graph = b.build();

    // 2. Attach vulnerability trees (identical per tier).
    let lb_tree = AttackTree::or(vec![
        AttackTree::leaf(Vulnerability::new("CVE-LB-RCE", 10.0, 0.9)),
        AttackTree::and(vec![
            AttackTree::leaf(Vulnerability::new("CVE-LB-INFO", 2.9, 1.0)),
            AttackTree::leaf(Vulnerability::new("CVE-LB-LPE", 10.0, 0.39)),
        ]),
    ]);
    let api_tree = AttackTree::or(vec![
        AttackTree::leaf(Vulnerability::new("CVE-API-DESER", 6.4, 0.86)),
        AttackTree::leaf(Vulnerability::new("CVE-API-SSRF", 2.9, 1.0)),
    ]);
    let vault_tree = AttackTree::and(vec![
        AttackTree::leaf(Vulnerability::new("CVE-VAULT-AUTH", 10.0, 0.39)),
        AttackTree::leaf(Vulnerability::new("CVE-VAULT-LPE", 10.0, 0.39)),
    ]);
    let harm = Harm::new(
        graph,
        vec![
            Some(lb_tree.clone()),
            Some(lb_tree),
            Some(api_tree.clone()),
            Some(api_tree),
            Some(vault_tree),
        ],
        vec![vault],
    );
    let _ = (lb1, lb2, api1, api2);

    let cfg = MetricsConfig::default();
    let m = harm.metrics(&cfg);
    println!("network: {}", m);
    println!();

    // 3. Which host most enables the attack goal?
    println!("host importance (ΔASP if hardened):");
    for (h, delta) in harm.host_importance(&cfg) {
        println!("  {:<8} {:.4}", harm.graph().host_name(h), delta);
    }
    println!();

    // 4. Which patches first?
    println!("greedy patch schedule:");
    for (i, (cve, asp)) in harm.greedy_patch_order(&cfg, 10).iter().enumerate() {
        println!("  {}. {:<16} -> network ASP {:.4}", i + 1, cve, asp);
    }

    // The vault gates every path: hardening it must zero the ASP.
    let ranked = harm.host_importance(&cfg);
    let top = harm.graph().host_name(ranked[0].0);
    assert_eq!(top, "vault");
    let schedule = harm.greedy_patch_order(&cfg, 10);
    assert_eq!(schedule.last().map(|(_, a)| *a), Some(0.0));
}
